"""Fleet-scale multi-tenant workload engine.

The §6 scenarios exercise the stack at 4–100 nodes and a handful of
pods; the paper's §4 claims about registry pull storms, cache-hit
economics and metadata crush are *fleet-shape* claims that only emerge
when thousands of tenants pull Zipf-distributed images concurrently.
This module simulates that shape directly: a trace-driven fleet of 10k+
nodes serving 1M+ container starts, runnable from the CLI as::

    python -m repro fleet --tenants 2000 --nodes 10000 --starts 1000000 --jobs 8

**The model.**  A :class:`FleetConfig` describes the fleet; the run is
split into ``shards`` independent cells (tenant partitions with their
own node pool and per-cell registry — the standard HPC-site "partition"
layout), each executed by a :class:`FleetShardEngine`:

- arrivals are a Poisson process whose rate follows a
  :class:`~repro.workload.generators.DiurnalProfile` (day/night swing
  plus burst windows);
- each start belongs to a tenant (Zipf-skewed tenant sizes) and names an
  image from the shared catalog (Zipf-skewed image popularity, the §4
  knob);
- every tenant owns a project in a multi-tenant
  :class:`~repro.registry.distribution.OCIDistributionRegistry` with a
  byte quota, and mirrors the catalog into it — content-addressed blob
  dedup means tenants × images *pushes* but only ~images worth of
  stored bytes;
- nodes keep content-addressed image/layer caches: a start whose image
  digest is already on the node is a warm start; a cold start pulls
  through the real registry (fault windows, rate limits, and transfer
  costs included), transferring only the layers the node misses.

**The hot paths.**  A million starts cannot afford one simulator event,
one pod object, and one O(nodes) scheduler scan each.  The engine
therefore

- batches time into epochs: one simulator event per epoch drives an
  exact two-stream merge of arrivals (precomputed trace arrays) and
  completions (a calendar of per-epoch buckets) — virtual-time results
  are *identical* to one-event-per-start execution, verified by the
  ``naive`` mode below;
- pools container records in slotted parallel arrays with a free list —
  no per-start object allocation, no retained per-container history;
- places starts through :class:`~repro.cluster.capacity.CapacityIndex`
  (bucketed best-fit, O(log nodes)) instead of a linear scan;
- streams per-tenant results into :class:`TenantStats` accumulators and
  fixed-bucket histograms;
- feeds labeled metrics through interned series keys
  (:meth:`~repro.obs.metrics.MetricsRegistry.series_key`) so the
  per-start path never rebuilds label dicts.

``FleetConfig(naive=True)`` runs the pre-optimization implementation —
one event per arrival and completion, linear capacity scans, per-start
dict records and label formatting — byte-identical results, an order of
magnitude slower.  ``benchmarks/bench_fleet.py`` records the ratio.

**Chaos.**  A :class:`~repro.faults.plan.FaultPlan` can be delivered
into a fleet run (``python -m repro fleet --chaos`` / ``--faults``).
Pull-style registry windows (429, timeout, slow-blob) are polled by the
real pull path the engine already uses — cold pulls retry with
jitter-free backoff and charge :class:`TenantStats.failed` when the
:class:`~repro.faults.retry.RetryPolicy` gives up.  Push-style
``NODE_CRASH`` events target synthetic ``fleet-node-NNNNN`` ids (see
:func:`fleet_node_name`): the engine merges the plan's crash/restore
edges as a third stream into the epoch merge (edges win ties over
completions, completions over arrivals — exactly the URGENT-before-
NORMAL order of the naive engine, so fast-vs-naive equivalence holds
under chaos too).  A crash kills every slot on the node (their starts
requeue through placement, the capacity ledger forgets the node), a
restore returns the node fully free; slot records are generation-
counted so a killed slot's stale completion is skipped wherever it
surfaces.  Disarmed runs pay one integer compare per epoch and per
merge step.
"""

from __future__ import annotations

import dataclasses
import json
import math
import typing as _t
from collections import deque
from heapq import heapify, heappop, heappush

import numpy as np

from repro.cluster.capacity import CapacityIndex, LinearCapacityScan
from repro.faults.injector import injector as _faults
from repro.faults.plan import PUSH_KINDS, FaultEvent, FaultKind, FaultPlan
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.obs import metrics as _metrics
from repro.obs import timeseries as _timeseries
from repro.registry.distribution import (
    OCIDistributionRegistry,
    RegistryUnavailable,
)
from repro.registry.quota import QuotaManager
from repro.sim import Environment
from repro.sim import profile as _profile
from repro.sim.events import Event
from repro.sim.rng import DeterministicRNG
from repro.workload.generators import (
    DiurnalProfile,
    ZipfSampler,
    modulated_poisson_arrivals,
    weighted_choice_indices,
    zipf_weights,
)

#: queue-wait histogram bounds (seconds); +inf bucket is implicit
WAIT_BUCKETS: tuple[float, ...] = (0.0, 1.0, 5.0, 15.0, 60.0, 300.0)

#: per-tenant time series are sampled only when a shard owns at most this
#: many tenants — smoke-scale runs get full tenant detail, the 2000-tenant
#: flagship keeps its per-tick sampling cost at O(shard aggregates)
TENANT_SERIES_MAX = 16


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Everything that defines a fleet run (plain JSON-able values).

    The config *is* the run: traces, shard partitions and therefore
    every result are pure functions of it, which is what the CLI's
    "byte-identical for any ``--jobs``" contract rests on.  Scale knobs:
    ``tenants`` / ``nodes`` / ``starts`` / ``images`` size the fleet;
    ``zipf_s`` (image popularity) and ``tenant_skew`` (tenant sizes) set
    the §4 skew; ``day`` is the diurnal period the Poisson arrival rate
    swings over, and ``amplitude`` its day/night swing.  Placement knobs:
    ``node_cpus`` per node, with per-start requests drawn from
    ``cpu_choices`` weighted by ``cpu_shares``, and busy time of
    ``duration_mean``-exponential seconds plus the startup cost (a warm
    start costs ``warm_start_s``; a cold pull adds transfer plus unpack
    at ``unpack_bandwidth``).  Execution knobs: ``shards`` fixes the
    cell partition (NOT the worker count), ``epoch`` is the fast
    engine's batching grain (results are exact, not approximated, at any
    epoch length), and ``naive=True`` swaps in the retained
    pre-optimization engine — same results, one event per start.
    """

    tenants: int = 64
    nodes: int = 128
    starts: int = 5000
    images: int = 24
    zipf_s: float = 1.2
    tenant_skew: float = 0.8
    seed: int = 0
    node_cpus: int = 8
    cpu_choices: tuple[int, ...] = (1, 2, 4)
    cpu_shares: tuple[float, ...] = (0.5, 0.3, 0.2)
    duration_mean: float = 90.0
    day: float = 1800.0
    epoch: float = 1.0
    warm_start_s: float = 0.4
    unpack_bandwidth: float = 400e6
    shards: int = 8
    amplitude: float = 0.6
    naive: bool = False

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.nodes < 1 or self.images < 1:
            raise ValueError("tenants, nodes and images must all be >= 1")
        if self.starts < 0:
            raise ValueError(f"starts must be >= 0, got {self.starts}")
        if max(self.cpu_choices) > self.node_cpus:
            raise ValueError(
                f"largest request ({max(self.cpu_choices)} cpus) exceeds "
                f"node capacity ({self.node_cpus}) — starts could never place"
            )
        if len(self.cpu_choices) != len(self.cpu_shares):
            raise ValueError("cpu_choices and cpu_shares must align")
        if self.epoch <= 0 or self.day <= 0:
            raise ValueError("epoch and day must be positive")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    # -- serialization (cells carry the config as a JSON string) ------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetConfig":
        data = json.loads(text)
        for field in ("cpu_choices", "cpu_shares"):
            data[field] = tuple(data[field])
        return cls(**data)

    def profile(self) -> DiurnalProfile:
        return DiurnalProfile(amplitude=self.amplitude)

    # -- shard partitioning (fixed by config, independent of --jobs) --------
    @property
    def effective_shards(self) -> int:
        return max(1, min(self.shards, self.tenants, self.nodes))

    def shard_tenant_ids(self, shard: int) -> list[int]:
        """Global tenant ids owned by ``shard`` (round-robin, so every
        shard gets a mix of head and tail tenants)."""
        return list(range(shard, self.tenants, self.effective_shards))

    def shard_node_count(self, shard: int) -> int:
        shards = self.effective_shards
        return self.nodes // shards + (1 if shard < self.nodes % shards else 0)

    def shard_node_base(self, shard: int) -> int:
        """First global node id owned by ``shard`` — shards own
        contiguous id blocks, so fault-plan targets (global
        ``fleet-node-NNNNN`` names) map to exactly one shard."""
        shards = self.effective_shards
        return (self.nodes // shards) * shard + min(shard, self.nodes % shards)

    def shard_start_counts(self) -> list[int]:
        """Starts per shard, proportional to tenant count (largest-
        remainder rounding, so the counts always sum to ``starts``)."""
        shards = self.effective_shards
        counts = [len(self.shard_tenant_ids(s)) for s in range(shards)]
        exact = [self.starts * c / self.tenants for c in counts]
        base = [int(x) for x in exact]
        leftover = self.starts - sum(base)
        order = sorted(range(shards), key=lambda s: (-(exact[s] - base[s]), s))
        for s in order[:leftover]:
            base[s] += 1
        return base


@dataclasses.dataclass
class ShardTrace:
    """One shard's precomputed arrival trace as flat arrays.

    ``tenants_local`` indexes into the shard's ``tenant_ids`` list (not
    global tenant ids); ``image_arr`` is the numpy view of ``images``
    kept for vectorized demand accounting.
    """

    times: list[float]
    image_arr: "np.ndarray"
    images: list[int]
    tenants_local: list[int]
    cpus: list[int]
    durations: list[float]


def generate_shard_trace(
    config: FleetConfig,
    shard: int,
    n_starts: int | None = None,
    tenant_ids: list[int] | None = None,
) -> ShardTrace:
    """Generate shard ``shard``'s arrival trace.

    Stream names are keyed by shard only (``shard{N}.arrivals`` etc. off
    a :class:`DeterministicRNG` seeded with ``config.seed``), so the
    trace depends on the config alone — every consumer (the fleet
    engine, the §6.5 replay bridge, tests) sees byte-identical arrays.
    ``n_starts`` / ``tenant_ids`` default to the config's own partition
    (:meth:`FleetConfig.shard_start_counts` /
    :meth:`FleetConfig.shard_tenant_ids`); overriding them reuses the
    generator for custom partitions without changing the stream keying.
    Returns a :class:`ShardTrace` of parallel flat arrays — arrival
    times (diurnal Poisson), image ids (Zipf), shard-local tenant
    indexes (Zipf-weighted), cpu requests, and busy durations.
    """
    if n_starts is None:
        n_starts = config.shard_start_counts()[shard]
    if tenant_ids is None:
        tenant_ids = config.shard_tenant_ids(shard)
    rng = DeterministicRNG(config.seed)
    n = n_starts
    tag = f"shard{shard}"
    if n == 0:
        return ShardTrace(
            times=[],
            image_arr=np.empty(0, dtype=np.int64),
            images=[],
            tenants_local=[],
            cpus=[],
            durations=[],
        )
    base_rate = n / config.day
    times = modulated_poisson_arrivals(
        rng.stream(f"{tag}.arrivals"), n, base_rate,
        config.profile(), config.day,
    )
    image_sampler = ZipfSampler(config.images, config.zipf_s)
    images = image_sampler.sample(rng.stream(f"{tag}.images"), n)
    tenant_weights = zipf_weights(config.tenants, config.tenant_skew)
    local_weights = tenant_weights[np.asarray(tenant_ids)]
    tenants_local = weighted_choice_indices(
        rng.stream(f"{tag}.tenants"), local_weights, n
    )
    cpus = weighted_choice_indices(
        rng.stream(f"{tag}.cpus"), np.asarray(config.cpu_shares), n
    )
    cpu_lookup = np.asarray(config.cpu_choices, dtype=np.int64)
    durations = rng.stream(f"{tag}.durations").exponential(
        config.duration_mean, size=n
    )
    # Python lists: element access in the hot loop skips np boxing.
    return ShardTrace(
        times=times.tolist(),
        image_arr=images,
        images=images.tolist(),
        tenants_local=tenants_local.tolist(),
        cpus=cpu_lookup[cpus].tolist(),
        durations=durations.tolist(),
    )


# -- fault-plan targeting ------------------------------------------------------

def fleet_node_name(node: int) -> str:
    """The synthetic name of global fleet node ``node`` — the namespace
    fault plans target (``FaultEvent.target``) for fleet node crashes."""
    return f"fleet-node-{node:05}"


def fleet_node_names(config: FleetConfig) -> list[str]:
    """Every node name in ``config``'s fleet, in global id order."""
    return [fleet_node_name(i) for i in range(config.nodes)]


def generate_fleet_plan(
    config: FleetConfig,
    seed: int | None = None,
    kinds: _t.Sequence["FaultKind"] | None = None,
) -> FaultPlan:
    """A deterministic default fault plan sized for ``config``.

    Wraps :meth:`FaultPlan.generate` with the fleet's target pool (the
    synthetic node names) and a horizon inside the arrival window, so
    crashes land while slots are live.  Default kinds: two node crashes
    plus a registry 429 window and a slow-blob window — the §6 failure
    modes the fleet path exercises.  ``seed`` defaults to
    ``config.seed``; the plan is a pure function of its arguments.
    """
    if seed is None:
        seed = config.seed
    if kinds is None:
        kinds = [
            FaultKind.NODE_CRASH,
            FaultKind.NODE_CRASH,
            FaultKind.REGISTRY_429,
            FaultKind.REGISTRY_SLOW_BLOB,
        ]
    return FaultPlan.generate(
        seed=seed,
        horizon=config.day,
        kinds=kinds,
        targets={FaultKind.NODE_CRASH: fleet_node_names(config)},
    )


class ImageCatalog:
    """The shared image catalog tenants mirror into their projects.

    Images share layers deliberately — one distro base (two variants),
    one runtime layer (three variants), one unique app layer — so the
    content-addressed economics have something to deduplicate, exactly
    like a site's stack of pipeline images over common bases.
    """

    def __init__(self, images: list, digests: list[str],
                 layer_digests: list[tuple[str, ...]],
                 layer_sizes: list[tuple[int, ...]],
                 compressed_sizes: list[int]):
        self.images = images
        self.digests = digests
        self.layer_digests = layer_digests
        self.layer_sizes = layer_sizes
        self.compressed_sizes = compressed_sizes

    def __len__(self) -> int:
        return len(self.images)

    @classmethod
    def build(cls, n_images: int) -> "ImageCatalog":
        from repro.fs.tree import FileTree
        from repro.oci.image import ImageConfig, OCIImage
        from repro.oci.layer import Layer

        def base_layer(variant: int) -> Layer:
            tree = FileTree()
            tree.create_file("/bin/sh", size=120_000, mode=0o755)
            tree.create_file("/etc/os-release", data=f"ID=fleet-base-{variant}\n".encode())
            for i in range(30):
                tree.create_file(f"/usr/lib/lib{i:03}.so", size=400_000 + variant * 7_000,
                                 mode=0o755)
            return Layer(tree, created_by=f"FROM scratch (fleet base {variant})")

        def runtime_layer(variant: int) -> Layer:
            tree = FileTree()
            name = ("python", "mpi", "tools")[variant]
            tree.create_file(f"/opt/{name}/bin/{name}", size=6_000_000, mode=0o755)
            for i in range(40):
                tree.create_file(f"/opt/{name}/lib/m{i:03}.bin", size=150_000)
            return Layer(tree, created_by=f"RUN install {name}")

        bases = [base_layer(v) for v in range(2)]
        runtimes = [runtime_layer(v) for v in range(3)]
        images, digests, layer_digests, layer_sizes, compressed = [], [], [], [], []
        for img in range(n_images):
            tree = FileTree()
            app_size = 4_000_000 + (img * 7919) % 60_000_001
            tree.create_file(f"/srv/app{img:03}/run", size=app_size, mode=0o755)
            tree.create_file(f"/srv/app{img:03}/conf.yaml", size=2_000)
            app = Layer(tree, created_by=f"COPY app{img:03}")
            layers = [bases[img % 2], runtimes[img % 3], app]
            image = OCIImage(ImageConfig(cmd=(f"/srv/app{img:03}/run",)), layers)
            images.append(image)
            digests.append(image.digest)
            layer_digests.append(tuple(layer.digest for layer in layers))
            layer_sizes.append(tuple(layer.compressed_size for layer in layers))
            compressed.append(image.compressed_size)
        return cls(images, digests, layer_digests, layer_sizes, compressed)


class TenantStats:
    """Streaming per-tenant accumulator — the fleet never retains a
    per-container record."""

    __slots__ = ("starts", "completions", "failed", "cold_pulls",
                 "pulled_bytes", "wait_sum", "wait_max", "cpu_seconds")

    def __init__(self) -> None:
        self.starts = 0
        self.completions = 0
        self.failed = 0
        self.cold_pulls = 0
        self.pulled_bytes = 0
        self.wait_sum = 0.0
        self.wait_max = 0.0
        self.cpu_seconds = 0.0

    def as_tuple(self) -> tuple:
        return (self.starts, self.completions, self.failed, self.cold_pulls,
                self.pulled_bytes, self.wait_sum, self.wait_max, self.cpu_seconds)


@dataclasses.dataclass
class FleetShardResult:
    """One shard's outputs: plain picklable accumulators."""

    shard: int
    tenants: dict[int, tuple]
    starts: int = 0
    completions: int = 0
    failed: int = 0
    warm_starts: int = 0
    cold_pulls: int = 0
    retry_attempts: int = 0
    pulled_bytes: int = 0
    demand_bytes: int = 0
    registry_pushes: int = 0
    registry_pulls: int = 0
    blob_uploads_skipped: int = 0
    stored_bytes: int = 0
    quota_used: int = 0
    pending_peak: int = 0
    live_peak: int = 0
    wait_hist: list[int] = dataclasses.field(
        default_factory=lambda: [0] * (len(WAIT_BUCKETS) + 1))
    wait_sum: float = 0.0
    wait_max: float = 0.0
    makespan: float = 0.0
    epochs: int = 0
    leaks: list[str] = dataclasses.field(default_factory=list)
    #: chaos accounting (all zero/empty when no plan was armed)
    crashes: int = 0
    requeues: int = 0
    injected: dict[str, int] = dataclasses.field(default_factory=dict)
    injected_at: dict[str, float] = dataclasses.field(default_factory=dict)
    fault_retries: dict[str, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class FleetResult:
    """The merged fleet run (associative fold of shard results)."""

    config: FleetConfig
    shards: int
    tenants: dict[int, tuple]
    starts: int
    completions: int
    failed: int
    warm_starts: int
    cold_pulls: int
    retry_attempts: int
    pulled_bytes: int
    demand_bytes: int
    registry_pushes: int
    registry_pulls: int
    blob_uploads_skipped: int
    stored_bytes: int
    quota_used: int
    pending_peak: int
    live_peak: int
    wait_hist: list[int]
    wait_sum: float
    wait_max: float
    makespan: float
    epochs: int
    leaks: list[str]
    #: chaos accounting (all zero/empty when no plan was armed)
    crashes: int = 0
    requeues: int = 0
    injected: dict[str, int] = dataclasses.field(default_factory=dict)
    injected_at: dict[str, float] = dataclasses.field(default_factory=dict)
    fault_retries: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def warm_rate(self) -> float:
        return self.warm_starts / self.starts if self.starts else 0.0

    @property
    def bytes_saved_ratio(self) -> float:
        """Transfer bytes the node/image caches absorbed, as a fraction
        of the cache-free demand — the §4 cache-economics number."""
        if not self.demand_bytes:
            return 0.0
        return 1.0 - self.pulled_bytes / self.demand_bytes

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.starts if self.starts else 0.0


def merge_shard_results(
    results: _t.Sequence[FleetShardResult], config: FleetConfig
) -> FleetResult:
    """Fold shard results in shard order (sums, maxes, dict union)."""
    tenants: dict[int, tuple] = {}
    hist = [0] * (len(WAIT_BUCKETS) + 1)
    totals = dict(starts=0, completions=0, failed=0, warm_starts=0,
                  cold_pulls=0, retry_attempts=0, pulled_bytes=0,
                  demand_bytes=0, registry_pushes=0, registry_pulls=0,
                  blob_uploads_skipped=0, stored_bytes=0, quota_used=0,
                  epochs=0, crashes=0, requeues=0)
    wait_sum = 0.0
    wait_max = 0.0
    makespan = 0.0
    pending_peak = 0
    live_peak = 0
    leaks: list[str] = []
    injected: dict[str, int] = {}
    injected_at: dict[str, float] = {}
    fault_retries: dict[str, int] = {}
    for res in sorted(results, key=lambda r: r.shard):
        tenants.update(res.tenants)
        for key in totals:
            totals[key] += getattr(res, key)
        for i, count in enumerate(res.wait_hist):
            hist[i] += count
        wait_sum += res.wait_sum
        wait_max = max(wait_max, res.wait_max)
        makespan = max(makespan, res.makespan)
        pending_peak = max(pending_peak, res.pending_peak)
        live_peak = max(live_peak, res.live_peak)
        leaks.extend(f"shard {res.shard}: {leak}" for leak in res.leaks)
        for kind, count in res.injected.items():
            injected[kind] = injected.get(kind, 0) + count
        for kind, at in res.injected_at.items():
            if kind not in injected_at or at < injected_at[kind]:
                injected_at[kind] = at
        for subsystem, count in res.fault_retries.items():
            fault_retries[subsystem] = fault_retries.get(subsystem, 0) + count
    return FleetResult(
        config=config, shards=len(results), tenants=tenants,
        pending_peak=pending_peak, live_peak=live_peak, wait_hist=hist,
        wait_sum=wait_sum, wait_max=wait_max, makespan=makespan,
        leaks=leaks, injected=injected, injected_at=injected_at,
        fault_retries=fault_retries, **totals,
    )


class FleetShardEngine:
    """Simulates one fleet shard: its tenants, nodes, and registry."""

    def __init__(self, env: Environment, config: FleetConfig, shard: int,
                 plan: FaultPlan | None = None):
        self.env = env
        self.config = config
        self.shard = shard
        self.tenant_ids = config.shard_tenant_ids(shard)
        self.n_nodes = config.shard_node_count(shard)
        self.n_starts = config.shard_start_counts()[shard]
        self.catalog = ImageCatalog.build(config.images)
        self._retry = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=60.0)
        self._build_registry()
        self._generate_trace()
        # -- placement + node caches ---------------------------------------
        index_cls = LinearCapacityScan if config.naive else CapacityIndex
        self.index = index_cls(self.n_nodes, config.node_cpus)
        self.node_images: list[set[str]] = [set() for _ in range(self.n_nodes)]
        self.node_layers: list[set[str]] = [set() for _ in range(self.n_nodes)]
        # -- pooled slot records (parallel arrays + free list) --------------
        self._slot_node: list[int] = []
        self._slot_req: list[int] = []
        self._slot_tenant: list[int] = []
        self._slot_busy: list[float] = []
        self._free_slots: list[int] = []
        #: trace index each slot is running (for requeue on node crash)
        self._slot_k: list[int] = []
        #: slot occupancy flag (crash kill-scan looks only at live slots)
        self._slot_live: list[bool] = []
        #: generation counter, bumped when a crash kills the slot — stale
        #: completion records carry the old generation and are skipped
        self._slot_gen: list[int] = []
        # -- completion calendar (per-epoch buckets) ------------------------
        self._calendar: dict[int, list[tuple[float, int, int, int]]] = {}
        self._cal_heap: list[int] = []
        self._cal_size = 0
        self._local_heap: list[tuple[float, int, int, int]] = []
        self._local_epoch = -1
        self._comp_seq = 0
        self._pending: deque[tuple[int, float]] = deque()
        self._live = 0
        # -- chaos: the plan's crash/restore edges as a third merge stream --
        self._fault_edges = self._index_plan(plan)
        #: crash bookkeeping (slot_k/slot_live writes, generation reads)
        #: is skipped wholesale on the disarmed hot path — with no crash
        #: edges every generation stays 0, so the records are identical
        self._armed = bool(self._fault_edges)
        self._edge_i = 0
        self._crashes = 0
        self._requeues = 0
        self._last_requeues = 0
        self._last_failed = 0
        self._last_retries = 0
        # -- hot-loop constants (one attribute hop instead of a chain) ------
        self._naive = config.naive
        self._epoch_len = config.epoch
        self._warm_start_s = config.warm_start_s
        self._inv_unpack = 1.0 / config.unpack_bandwidth
        self._digests = self.catalog.digests
        # -- streaming results (peaks/sums folded into the result at end) ---
        self._warm_starts = 0
        self._makespan = 0.0
        self._pending_peak = 0
        self._live_peak = 0
        self._wait_hist = [0] * (len(WAIT_BUCKETS) + 1)
        self.stats = [TenantStats() for _ in self.tenant_ids]
        self.result = FleetShardResult(shard=shard, tenants={})
        self.result.demand_bytes = int(
            np.asarray(self.catalog.compressed_sizes)[self._image_arr].sum()
        ) if self.n_starts else 0
        self._naive_records: list[dict] = []  # naive mode only, by design
        #: time-series sampling (fast mode only: the retained naive engine
        #: predates the recorder and must keep producing identical reports)
        self._rec = _timeseries.recorder
        self._metric_keys = None
        if _metrics.registry.enabled and not config.naive:
            reg = _metrics.registry
            self._metric_keys = [
                (reg.series_key("fleet.starts", tenant=f"t{gid:05}"),
                 reg.series_key("fleet.cold_pulls", tenant=f"t{gid:05}"))
                for gid in self.tenant_ids
            ]

    # -- setup ---------------------------------------------------------------
    def _build_registry(self) -> None:
        config = self.config
        quotas = QuotaManager()
        self.registry = OCIDistributionRegistry(
            name=f"fleet-registry-{self.shard}", multi_tenant=True, quotas=quotas,
        )
        catalog_bytes = sum(self.catalog.compressed_sizes)
        self._repos: list[list[str]] = []
        for gid in self.tenant_ids:
            project = f"t{gid:05}"
            self.registry.create_tenant(project)
            quotas.set_limit(project, 2 * catalog_bytes + 1)
            repos = [f"{project}/img{img:03}" for img in range(len(self.catalog))]
            self._repos.append(repos)
            for img, repo in enumerate(repos):
                self.registry.push_image(repo, "v1", self.catalog.images[img])
        self._quota_total = sum(
            quotas.used(f"t{gid:05}") for gid in self.tenant_ids
        )

    def _generate_trace(self) -> None:
        """Precompute the shard's whole arrival trace as flat arrays."""
        trace = generate_shard_trace(
            self.config, self.shard, n_starts=self.n_starts,
            tenant_ids=self.tenant_ids,
        )
        self._times = trace.times
        self._image_arr = trace.image_arr
        self._images = trace.images
        self._tenants_local = trace.tenants_local
        self._cpus = trace.cpus
        self._durations = trace.durations

    # -- chaos: push-fault edge stream ---------------------------------------
    def _index_plan(
        self, plan: FaultPlan | None
    ) -> list[tuple[float, int, int, int, FaultEvent]]:
        """The plan's push events as ``(t, seq, local_node, phase, event)``
        edges — phase 0 is the crash, phase 1 the restore (always paired,
        even for duration-0 events, so a crashed node never stays down).
        Targets outside this shard's contiguous node block are dropped;
        the list is sorted by ``(t, seq)`` so overlapping events keep
        plan order, matching the injector driver's delivery order."""
        if plan is None:
            return []
        base = self.config.shard_node_base(self.shard)
        local_by_name = {
            fleet_node_name(base + i): i for i in range(self.n_nodes)
        }
        edges: list[tuple[float, int, int, int, FaultEvent]] = []
        order = 0
        for event in plan.push_events():
            if event.target is None:
                continue  # a fleet crash needs a concrete victim
            node = local_by_name.get(event.target)
            if node is None:
                continue  # some other shard owns this node
            edges.append((event.at, order, node, 0, event))
            edges.append((event.until, order + 1, node, 1, event))
            order += 2
        edges.sort(key=lambda edge: (edge[0], edge[1]))
        return edges

    def _deliver_edge(self, edge: tuple[float, int, int, int, FaultEvent]) -> None:
        t, _seq, node, phase, event = edge
        if phase == 0:
            _faults.record_push(event, t)
            self._crash_node(node, t)
        else:
            self._restore_node(node, t)

    def _crash_node(self, node: int, t: float) -> None:
        """Kill every live slot on ``node`` and take it out of the pool.

        Killed slots requeue their starts (wait restarts at crash time),
        bump their generation so the stale completion record is skipped
        wherever it surfaces, and return to the free list.  Their cores
        are *not* released — :meth:`_restore_node` recreates the node's
        full capacity in one step."""
        index = self.index
        if node in index.down:
            return  # overlapping crash windows: first one owns the node
        slot_node = self._slot_node
        slot_live = self._slot_live
        slot_gen = self._slot_gen
        slot_k = self._slot_k
        free_slots = self._free_slots
        pending = self._pending
        killed = 0
        for slot in range(len(slot_node)):
            if slot_live[slot] and slot_node[slot] == node:
                slot_live[slot] = False
                slot_gen[slot] += 1
                free_slots.append(slot)
                self._cal_size -= 1
                pending.append((slot_k[slot], t))
                killed += 1
        self._live -= killed
        index.remove_node(node)
        self._crashes += 1
        self._requeues += killed
        if len(pending) > self._pending_peak:
            self._pending_peak = len(pending)
        self._drain_pending(t)

    def _restore_node(self, node: int, t: float) -> None:
        """Reboot ``node`` fully free and drain the placement queue."""
        if node not in self.index.down:
            return
        self.index.restore_node(node)
        self._drain_pending(t)

    # -- the run -------------------------------------------------------------
    def run(self) -> FleetShardResult:
        if self.n_starts or self._fault_edges:
            if self.config.naive:
                self._naive_schedule_edges()
                self._naive_schedule_arrivals()
            else:
                self.env.process(self._pump(), name=f"fleet-pump-{self.shard}")
            self.env.run()
            if not self._naive and self._rec.due(self.env.now):
                self._sample_timeseries(self._rec)  # final-state tick
        res = self.result
        res.crashes = self._crashes
        res.requeues = self._requeues
        res.warm_starts = self._warm_starts
        res.makespan = self._makespan
        res.pending_peak = self._pending_peak
        res.live_peak = self._live_peak
        res.wait_hist = self._wait_hist
        res.tenants = {
            gid: stats.as_tuple()
            for gid, stats in zip(self.tenant_ids, self.stats)
        }
        res.starts = sum(s.starts for s in self.stats)
        res.completions = sum(s.completions for s in self.stats)
        res.failed = sum(s.failed for s in self.stats)
        res.cold_pulls = sum(s.cold_pulls for s in self.stats)
        res.pulled_bytes = sum(s.pulled_bytes for s in self.stats)
        res.wait_sum = sum(s.wait_sum for s in self.stats)
        res.wait_max = max((s.wait_max for s in self.stats), default=0.0)
        res.registry_pushes = self.registry.stats["pushes"]
        res.registry_pulls = self.registry.stats["pulls"]
        res.blob_uploads_skipped = self.registry.stats["blob_uploads_skipped"]
        res.stored_bytes = self.registry.store.used_bytes
        res.quota_used = self._quota_total
        res.leaks = self.leak_descriptions()
        return res

    # -- leak audit surface (repro.faults.leaks duck-types this) -------------
    def leak_descriptions(self) -> list[str]:
        """Post-run invariants: every slot freed, every core returned,
        nothing still queued — the fleet equivalent of §3.2's "no
        lingering processes"."""
        leaks: list[str] = []
        if self._live:
            leaks.append(f"{self._live} container slot(s) still live after drain")
        if self._pending:
            leaks.append(f"{len(self._pending)} start(s) still queued for placement")
        if self._cal_size or self._local_heap:
            leaks.append(
                f"{self._cal_size + len(self._local_heap)} completion(s) never delivered"
            )
        if self.index.down:
            leaks.append(
                f"{len(self.index.down)} node(s) still down after drain"
            )
        total = self.n_nodes * self.config.node_cpus
        if self.index.total_free != total:
            leaks.append(
                f"capacity leak: {total - self.index.total_free} core(s) "
                f"never returned to the free pool"
            )
        return leaks

    # -- fast path: epoch-batched pump ---------------------------------------
    def _pump(self):
        env = self.env
        epoch_len = self.config.epoch
        times = self._times
        n = self.n_starts
        calendar = self._calendar
        cal_heap = self._cal_heap
        pending = self._pending
        edges = self._fault_edges
        ne = len(edges)
        slot_gen = self._slot_gen
        armed = self._armed
        prof = _profile.counters
        i = 0
        while (i < n or self._cal_size or self._local_heap or pending
               or self._edge_i < ne):
            e = self._edge_i
            # next epoch with work: earliest arrival, completion bucket,
            # or fault edge
            epoch = None
            if i < n:
                epoch = int(times[i] // epoch_len)
            while cal_heap and calendar.get(cal_heap[0]) is None:
                heappop(cal_heap)  # bucket consumed into a local heap earlier
            if cal_heap and (epoch is None or cal_heap[0] < epoch):
                epoch = cal_heap[0]
            if e < ne:
                edge_epoch = int(edges[e][0] // epoch_len)
                if epoch is None or edge_epoch < epoch:
                    epoch = edge_epoch
            if epoch is None:
                raise RuntimeError(
                    "fleet pump stalled: pending starts but no completions due"
                )
            boundary = (epoch + 1) * epoch_len
            if boundary > env.now:
                yield env.timeout_until(boundary)
            # claim this epoch's completion bucket as the live local heap
            local = calendar.pop(epoch, None)
            if local is None:
                local = []
            else:
                if cal_heap and cal_heap[0] == epoch:
                    heappop(cal_heap)
                heapify(local)
            self._local_heap = local
            self._local_epoch = epoch
            # arrivals that fall inside this epoch
            j = i
            while j < n and times[j] < boundary:
                j += 1
            # exact three-stream merge; fault edges win all ties and
            # completions win ties over arrivals (free before place) —
            # matching the naive event ordering: edges are init-scheduled
            # URGENT events (lowest seq), completions run-scheduled
            # URGENT, arrivals NORMAL
            complete = self._complete
            arrive = self._arrive
            k = i
            while local or k < j or (e < ne and edges[e][0] < boundary):
                if e < ne:
                    edge = edges[e]
                    et = edge[0]
                    if (et < boundary and (not local or et <= local[0][0])
                            and (k >= j or et <= times[k])):
                        e += 1
                        self._edge_i = e
                        self._deliver_edge(edge)
                        continue
                if local and (k >= j or local[0][0] <= times[k]):
                    end_t, _seq, slot, gen = heappop(local)
                    if armed and slot_gen[slot] != gen:
                        continue  # slot killed by a crash; counted there
                    self._cal_size -= 1
                    complete(slot, end_t)
                else:
                    arrive(k, times[k])
                    k += 1
            i = j
            self._local_epoch = -1
            self.result.epochs += 1
            rec = self._rec
            if rec.enabled and env.now >= rec._next_due:
                self._sample_timeseries(rec)
            if prof.enabled:
                depth = (len(env._queue) + len(env._immediate)
                         + self._cal_size + len(pending))
                if depth > prof.event_queue_peak:
                    prof.event_queue_peak = depth
                live = self._live + len(pending)
                if live > prof.live_objects_peak:
                    prof.live_objects_peak = live

    def _sample_timeseries(self, rec: "_timeseries.TimeSeriesRecorder") -> None:
        """One sampler tick, inline at an epoch boundary (fast mode).

        The fleet pump is its own clock — one simulator event per epoch —
        so instead of a sampler process it ticks the recorder directly
        whenever an epoch crosses the sampling grid.  Costs one predicate
        and one float compare per epoch while sampling is off.
        """
        reg = _metrics.registry
        t = rec.sample(self.env.now, reg if reg.enabled else None)
        shard = str(self.shard)
        stats = self.stats
        starts = sum(s.starts for s in stats)
        cold = sum(s.cold_pulls for s in stats)
        wait_sum = sum(s.wait_sum for s in stats)
        rec.record("fleet.pending", t, len(self._pending), shard=shard)
        rec.record("fleet.live", t, self._live, shard=shard)
        rec.record("fleet.starts_total", t, starts, shard=shard)
        rec.record("fleet.cold_pulls_total", t, cold, shard=shard)
        rec.record(
            "fleet.warm_rate", t,
            (self._warm_starts / starts) if starts else 0.0, shard=shard,
        )
        rec.record(
            "fleet.pulled_bytes_total", t,
            sum(s.pulled_bytes for s in stats), shard=shard,
        )
        rec.record(
            "fleet.wait_mean", t, (wait_sum / starts) if starts else 0.0,
            shard=shard,
        )
        rec.record(
            "fleet.wait_max", t,
            max((s.wait_max for s in stats), default=0.0), shard=shard,
        )
        rec.record("fleet.quota_used", t, self._quota_total, shard=shard)
        # chaos-facing series: absolute gauges plus per-tick deltas (the
        # SLO rules threshold the deltas — probe-recorded series get no
        # automatic .rate derivation)
        failed = sum(s.failed for s in stats)
        rec.record("fleet.failed_total", t, failed, shard=shard)
        rec.record("fleet.nodes_down", t, len(self.index.down), shard=shard)
        rec.record(
            "fleet.requeues", t, self._requeues - self._last_requeues,
            shard=shard,
        )
        self._last_requeues = self._requeues
        rec.record("fleet.failures", t, failed - self._last_failed, shard=shard)
        self._last_failed = failed
        retries = self.result.retry_attempts
        rec.record(
            "fleet.retries", t, retries - self._last_retries, shard=shard
        )
        self._last_retries = retries
        if len(self.tenant_ids) <= TENANT_SERIES_MAX:
            for gid, st in zip(self.tenant_ids, stats):
                tenant = f"t{gid:05}"
                rec.record("fleet.tenant.starts", t, st.starts, tenant=tenant)
                rec.record("fleet.tenant.cold_pulls", t, st.cold_pulls, tenant=tenant)
                rec.record(
                    "fleet.tenant.warm_rate", t,
                    ((st.starts - st.cold_pulls) / st.starts) if st.starts else 0.0,
                    tenant=tenant,
                )
                rec.record(
                    "fleet.tenant.wait_mean", t,
                    (st.wait_sum / st.starts) if st.starts else 0.0,
                    tenant=tenant,
                )

    def _arrive(self, k: int, t: float) -> None:
        req = self._cpus[k]
        node = self.index.alloc(req)
        if node is None:
            pending = self._pending
            pending.append((k, t))
            if len(pending) > self._pending_peak:
                self._pending_peak = len(pending)
            return
        self._place(k, t, t, node, req)

    def _place(self, k: int, arrival_t: float, place_t: float,
               node: int, req: int) -> None:
        tloc = self._tenants_local[k]
        img = self._images[k]
        digest = self._digests[img]
        node_set = self.node_images[node]
        stats = self.stats[tloc]
        if digest in node_set:
            startup = self._warm_start_s
            self._warm_starts += 1
        else:
            try:
                startup = self._cold_pull(tloc, img, node, place_t, stats)
            except RetryExhausted:
                self.index.release(node, req)
                stats.failed += 1
                return
            node_set.add(digest)
        busy = startup + self._durations[k]
        end = place_t + busy
        armed = self._armed
        free_slots = self._free_slots
        if free_slots:
            slot = free_slots.pop()
            self._slot_node[slot] = node
            self._slot_req[slot] = req
            self._slot_tenant[slot] = tloc
            self._slot_busy[slot] = busy
            if armed:
                self._slot_k[slot] = k
                self._slot_live[slot] = True
        else:
            slot = len(self._slot_node)
            self._slot_node.append(node)
            self._slot_req.append(req)
            self._slot_tenant.append(tloc)
            self._slot_busy.append(busy)
            self._slot_gen.append(0)
            if armed:
                self._slot_k.append(k)
                self._slot_live.append(True)
        live = self._live + 1
        self._live = live
        if live > self._live_peak:
            self._live_peak = live
        seq = self._comp_seq
        self._comp_seq = seq + 1
        self._cal_size += 1
        gen = self._slot_gen[slot] if armed else 0
        record = (end, seq, slot, gen)
        if self._naive:
            event = Event(self.env)
            event.callbacks.append(self._naive_completion)
            event._value = (slot, end, gen)
            self.env._schedule_at(event, end, priority=Environment.URGENT)
        else:
            epoch = int(end // self._epoch_len)
            if epoch == self._local_epoch:
                heappush(self._local_heap, record)
            else:
                bucket = self._calendar.get(epoch)
                if bucket is None:
                    self._calendar[epoch] = [record]
                    heappush(self._cal_heap, epoch)
                else:
                    bucket.append(record)
        if end > self._makespan:
            self._makespan = end
        stats.starts += 1
        wait = place_t - arrival_t
        if wait > 0.0:
            stats.wait_sum += wait
            if wait > stats.wait_max:
                stats.wait_max = wait
        hist = self._wait_hist
        for b, bound in enumerate(WAIT_BUCKETS):
            if wait <= bound:
                hist[b] += 1
                break
        else:
            hist[-1] += 1
        if self._naive:
            # pre-optimization behaviour: a retained dict per container
            # and label dicts rebuilt for every metric increment
            self._naive_records.append({
                "tenant": self.tenant_ids[tloc], "image": img, "node": node,
                "cpus": req, "end": end,
            })
            reg = _metrics.registry
            if reg.enabled:
                reg.inc("fleet.starts", tenant=f"t{self.tenant_ids[tloc]:05}")
        elif self._metric_keys is not None:
            _metrics.registry.inc_series(self._metric_keys[tloc][0])

    def _cold_pull(self, tloc: int, img: int, node: int, t: float,
                   stats: TenantStats) -> float:
        """Pull through the real registry; returns the startup cost."""
        catalog = self.catalog
        node_layers = self.node_layers[node]
        missing = 0
        for digest, size in zip(catalog.layer_digests[img], catalog.layer_sizes[img]):
            if digest not in node_layers:
                missing += size
        repo = self._repos[tloc][img]
        policy = self._retry
        attempts = 0
        elapsed = 0.0
        while True:
            attempts += 1
            try:
                _image, cost = self.registry.pull_image(
                    repo, "v1", now=t + elapsed, have_digests=node_layers,
                )
                break
            except RegistryUnavailable as exc:
                elapsed += exc.cost
                self.result.retry_attempts += 1
                _faults.note_retry("fleet.registry")
                if policy.gives_up(attempts, elapsed):
                    raise RetryExhausted("fleet.registry", attempts, elapsed, exc) from exc
                delay = policy.delay(attempts - 1)
                if exc.retry_after is not None and exc.retry_after > delay:
                    delay = exc.retry_after
                elapsed += delay
        node_layers.update(catalog.layer_digests[img])
        stats.cold_pulls += 1
        stats.pulled_bytes += missing
        if self._metric_keys is not None:
            _metrics.registry.inc_series(self._metric_keys[tloc][1])
        elif self._naive and _metrics.registry.enabled:
            _metrics.registry.inc(
                "fleet.cold_pulls", tenant=f"t{self.tenant_ids[tloc]:05}"
            )
        return elapsed + cost + missing * self._inv_unpack + self._warm_start_s

    def _complete(self, slot: int, end_t: float) -> None:
        node = self._slot_node[slot]
        req = self._slot_req[slot]
        stats = self.stats[self._slot_tenant[slot]]
        index = self.index
        index.release(node, req)
        stats.completions += 1
        stats.cpu_seconds += self._slot_busy[slot] * req
        self._live -= 1
        if self._armed:
            self._slot_live[slot] = False
        self._free_slots.append(slot)
        # FIFO head-blocking drain, inlined (this runs once per
        # completion; _drain_pending is the same loop for the rare
        # crash-requeue and node-restore paths)
        pending = self._pending
        if pending:
            cpus = self._cpus
            while pending:
                k, arrival_t = pending[0]
                req2 = cpus[k]
                node2 = index.alloc(req2)
                if node2 is None:
                    break
                pending.popleft()
                self._place(k, arrival_t, end_t, node2, req2)

    def _drain_pending(self, place_t: float) -> None:
        """Place queued starts head-first until the head no longer fits
        (FIFO head-blocking, the shared drain for completions, crash
        requeues and node restores)."""
        pending = self._pending
        index = self.index
        cpus = self._cpus
        while pending:
            k, arrival_t = pending[0]
            req = cpus[k]
            node = index.alloc(req)
            if node is None:
                break
            pending.popleft()
            self._place(k, arrival_t, place_t, node, req)

    # -- naive (pre-optimization) drivers ------------------------------------
    def _naive_schedule_arrivals(self) -> None:
        """One simulator event per arrival, straight onto the heap."""
        env = self.env
        for k, t in enumerate(self._times):
            event = Event(env)
            event.callbacks.append(self._naive_arrival)
            event._value = k
            env._schedule_at(event, t)

    def _naive_schedule_edges(self) -> None:
        """Fault edges as plain URGENT events.  Scheduled before the
        arrivals (and before any run-time completion), so at equal times
        their lower sequence numbers deliver them first — the tie order
        the fast pump's three-stream merge reproduces."""
        env = self.env
        for edge in self._fault_edges:
            event = Event(env)
            event.callbacks.append(self._naive_edge)
            event._value = edge
            env._schedule_at(event, edge[0], priority=Environment.URGENT)
        self._edge_i = len(self._fault_edges)

    def _naive_arrival(self, event: Event) -> None:
        k = _t.cast(int, event._value)
        self._arrive(k, self._times[k])
        self._note_naive_pressure()

    def _naive_completion(self, event: Event) -> None:
        slot, end, gen = _t.cast(tuple, event._value)
        if self._slot_gen[slot] != gen:
            return  # slot killed by a crash; counted at kill time
        self._cal_size -= 1
        self._complete(slot, end)
        self._note_naive_pressure()

    def _naive_edge(self, event: Event) -> None:
        self._deliver_edge(_t.cast(tuple, event._value))
        self._note_naive_pressure()

    def _note_naive_pressure(self) -> None:
        prof = _profile.counters
        if prof.enabled:
            env = self.env
            depth = len(env._queue) + len(env._immediate) + len(self._pending)
            if depth > prof.event_queue_peak:
                prof.event_queue_peak = depth
            live = self._live + len(self._pending)
            if live > prof.live_objects_peak:
                prof.live_objects_peak = live


def run_fleet_shard(
    config: FleetConfig, shard: int, plan_json: str | None = None
) -> FleetShardResult:
    """Build and run one shard in a fresh environment (the cell body).

    ``plan_json`` arms a :class:`FaultPlan` inside this shard: the
    pull-style window events go to the process-wide injector (the cold
    pull path polls it through the registry), while the push-style
    ``NODE_CRASH`` events are consumed by the engine's own edge stream —
    the injector is armed with the pull subset only, so its driver
    process never perturbs the pump's event schedule.
    """
    env = Environment()
    plan = FaultPlan.from_json(plan_json) if plan_json else None
    if plan is not None:
        pull_plan = FaultPlan(
            [e for e in plan if e.kind not in PUSH_KINDS], seed=plan.seed
        )
        _faults.arm(pull_plan, env)
    try:
        engine = FleetShardEngine(env, config, shard, plan=plan)
        result = engine.run()
        if plan is not None:
            result.injected = dict(_faults.injected_counts)
            result.injected_at = dict(_faults.injected_at)
            result.fault_retries = dict(_faults.retry_counts)
        return result
    finally:
        if plan is not None:
            _faults.disarm()


def fleet_cells(config: FleetConfig, plan: FaultPlan | None = None) -> list:
    """The fixed cell partition for ``config`` (independent of --jobs).

    ``plan`` rides along as compact JSON in every cell, so worker
    processes arm byte-identical fault schedules."""
    from repro.shard.cells import FleetCell

    config_json = config.to_json()
    plan_json = plan.to_json(indent=None) if plan is not None else None
    return [
        FleetCell(config_json=config_json, shard=shard, plan_json=plan_json)
        for shard in range(config.effective_shards)
    ]


def run_fleet(
    config: FleetConfig,
    jobs: int = 1,
    metrics: bool = False,
    sample_interval: float | None = None,
    plan: FaultPlan | None = None,
) -> FleetResult:
    """Run the whole fleet through the shard runner and merge.

    ``sample_interval`` (virtual seconds) turns on per-shard time-series
    sampling inside each cell; the runner merges the sampled rings into
    the parent recorder in cell-index order, so ``--jobs N`` exports are
    byte-identical to serial.  ``plan`` delivers a fault plan into every
    shard (see :func:`run_fleet_shard`).
    """
    from repro.shard import ObsConfig, run_cells

    result = run_cells(
        fleet_cells(config, plan=plan),
        jobs=jobs,
        obs=ObsConfig(metrics=metrics, timeseries=sample_interval),
    )
    return merge_shard_results(result.values(), config)


def score_fleet_slo(
    result: FleetResult,
    rules=None,
    rec: "_timeseries.TimeSeriesRecorder | None" = None,
):
    """Score a sampled fleet run against SLO rules (the chaos scorecard).

    Evaluates ``rules`` (default :func:`repro.obs.slo.default_fleet_rules`)
    over the recorder's ``fleet.*`` series up to the run's makespan, and
    wires per-fault-kind detection latency from the merged
    ``injected_at`` map the way ``run_chaos`` does.  Returns a
    :class:`repro.obs.slo.ScorecardReport`; the caller owns recorder
    setup (sampling must have been enabled for the run).
    """
    from repro.obs import slo as _slo

    if rules is None:
        rules = _slo.default_fleet_rules()
    if rec is None:
        rec = _timeseries.recorder
    evaluation = _slo.evaluate(rules, rec, end_time=result.makespan)
    # alert timestamps are snapped to the sampling grid (floor), so snap
    # the injection instants the same way — otherwise a fault injected
    # mid-tick can "pre-date" the very alert that detected it and the
    # latency table silently attributes the next, unrelated fire
    interval = rec.interval
    injected_at = {
        kind: math.floor(at / interval) * interval
        for kind, at in result.injected_at.items()
    }
    detection = _slo.detection_latencies(injected_at, evaluation)
    return _slo.ScorecardReport.build(
        scenario="fleet", ruleset=rules, evaluation=evaluation, rec=rec,
        seed=result.config.seed, detection=detection,
    )


# -- reporting ----------------------------------------------------------------

def fleet_report_document(result: FleetResult) -> dict:
    """JSON-ready report (schema ``repro-fleet-report/2``)."""
    tenants = [
        [gid, *map(_json_num, stats)]
        for gid, stats in sorted(result.tenants.items())
    ]
    return {
        "schema": "repro-fleet-report/2",
        "config": json.loads(result.config.to_json()),
        "summary": {
            "shards": result.shards,
            "starts": result.starts,
            "completions": result.completions,
            "failed": result.failed,
            "warm_starts": result.warm_starts,
            "warm_rate": round(result.warm_rate, 6),
            "cold_pulls": result.cold_pulls,
            "retry_attempts": result.retry_attempts,
            "pulled_bytes": result.pulled_bytes,
            "demand_bytes": result.demand_bytes,
            "bytes_saved_ratio": round(result.bytes_saved_ratio, 6),
            "pending_peak": result.pending_peak,
            "live_peak": result.live_peak,
            "mean_wait_s": round(result.mean_wait, 6),
            "max_wait_s": round(result.wait_max, 6),
            "makespan_s": round(result.makespan, 6),
            "crashes": result.crashes,
            "requeues": result.requeues,
        },
        "faults": {
            "injected": {
                kind: result.injected[kind] for kind in sorted(result.injected)
            },
            "first_injected_at": {
                kind: round(result.injected_at[kind], 6)
                for kind in sorted(result.injected_at)
            },
            "retries": {
                name: result.fault_retries[name]
                for name in sorted(result.fault_retries)
            },
        },
        "registry": {
            "pushes": result.registry_pushes,
            "pulls": result.registry_pulls,
            "blob_uploads_skipped": result.blob_uploads_skipped,
            "stored_bytes": result.stored_bytes,
            "quota_used_bytes": result.quota_used,
        },
        "wait_histogram": {
            "bounds_s": list(WAIT_BUCKETS),
            "counts": list(result.wait_hist),
        },
        "leaks": list(result.leaks),
        "tenant_columns": ["tenant", "starts", "completions", "failed",
                           "cold_pulls", "pulled_bytes", "wait_sum_s",
                           "wait_max_s", "cpu_seconds"],
        "tenants": tenants,
    }


def _json_num(value):
    return round(value, 6) if isinstance(value, float) else value


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if value < 1000.0 or unit == "PB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1000.0
    return f"{value:.1f} PB"


def render_fleet_summary(result: FleetResult, top: int = 8) -> str:
    """Deterministic human summary (identical for --jobs 1 and N)."""
    cfg = result.config
    lines = [
        f"fleet: {cfg.nodes} nodes / {cfg.tenants} tenants / "
        f"{cfg.starts} starts ({result.shards} cells, zipf s={cfg.zipf_s}, "
        f"day={cfg.day:.0f}s)",
        f"  completed:  {result.completions}/{result.starts} "
        f"(failed {result.failed})   makespan {result.makespan:.1f}s",
        f"  image cache: {result.warm_rate:.1%} warm starts, "
        f"{result.cold_pulls} cold pulls, pulled {_human_bytes(result.pulled_bytes)} "
        f"({result.bytes_saved_ratio:.1%} saved vs cache-free "
        f"{_human_bytes(result.demand_bytes)})",
        f"  registry:   {result.registry_pushes} pushes "
        f"({result.blob_uploads_skipped} blob uploads deduped), "
        f"{result.registry_pulls} pulls, stores {_human_bytes(result.stored_bytes)}, "
        f"quota charged {_human_bytes(result.quota_used)}",
        f"  queueing:   peak pending {result.pending_peak}, peak live "
        f"{result.live_peak}, mean wait {result.mean_wait:.2f}s, "
        f"max wait {result.wait_max:.1f}s",
    ]
    if result.crashes or result.injected:
        injected = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(result.injected.items())
        )
        lines.append(
            f"  chaos:      {result.crashes} node crash(es), "
            f"{result.requeues} requeued start(s), injected {injected or 'none'}"
        )
    if result.retry_attempts:
        lines.append(f"  retries:    {result.retry_attempts} registry retries")
    if result.leaks:
        lines.append(f"  LEAKS:      {len(result.leaks)}")
        lines.extend(f"    - {leak}" for leak in result.leaks)
    else:
        lines.append("  leaks:      none")
    ranked = sorted(result.tenants.items(), key=lambda kv: (-kv[1][0], kv[0]))
    lines.append(f"  top tenants ({min(top, len(ranked))} of {len(ranked)}):")
    for gid, stats in ranked[:top]:
        starts, completions, _failed, cold, pulled = stats[:5]
        lines.append(
            f"    t{gid:05}  {starts:>8} starts  {completions:>8} done  "
            f"{cold:>6} cold pulls  {_human_bytes(pulled):>10}"
        )
    return "\n".join(lines)
