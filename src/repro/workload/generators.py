"""Workload generators for scenario and benchmark runs."""

from __future__ import annotations

import typing as _t

from repro.k8s.objects import ContainerSpec, ObjectMeta, Pod, PodSpec, ResourceRequests
from repro.sim.rng import DeterministicRNG


def poisson_arrivals(rng: DeterministicRNG, rate_per_second: float, count: int) -> list[float]:
    """Arrival times of ``count`` events at the given mean rate."""
    stream = rng.stream("arrivals")
    times = []
    t = 0.0
    for _ in range(count):
        t += float(stream.exponential(1.0 / rate_per_second))
        times.append(t)
    return times


class PodBatchGenerator:
    """Generates workflow-style pod batches (bioinformatics pipelines:
    many single-node steps of varying size, §2)."""

    def __init__(
        self,
        image: str,
        seed: int = 0,
        user_uid: int = 1000,
        cpu_choices: tuple[float, ...] = (1, 2, 4),
        duration_range: tuple[float, float] = (20.0, 120.0),
    ):
        self.image = image
        self.rng = DeterministicRNG(seed)
        self.user_uid = user_uid
        self.cpu_choices = cpu_choices
        self.duration_range = duration_range
        self._counter = 0

    def make_pod(self, name: str | None = None) -> Pod:
        self._counter += 1
        cpu = self.rng.choice(list(self.cpu_choices))
        lo, hi = self.duration_range
        duration = self.rng.uniform(lo, hi)
        return Pod(
            metadata=ObjectMeta(name=name or f"step-{self._counter:04}"),
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        name="main",
                        image=self.image,
                        resources=ResourceRequests(cpu=cpu),
                    )
                ],
                user_uid=self.user_uid,
                duration=duration,
            ),
        )

    def batch(self, n: int) -> list[Pod]:
        return [self.make_pod() for _ in range(n)]
