"""Workload generators for scenario and benchmark runs.

Two families live here:

- the small-batch pod generators the §6 scenarios consume
  (:class:`PodBatchGenerator`, :func:`poisson_arrivals`);
- the fleet-scale stochastic models behind :mod:`repro.workload.fleet`:
  a time-varying arrival process (:func:`modulated_poisson_arrivals`
  over a :class:`DiurnalProfile`) and the Zipf popularity sampler
  (:class:`ZipfSampler`) that drives registry pull storms — the paper's
  §4 cache-economics claims are statements about *these distributions*,
  not about any single container.

Everything draws from named :class:`~repro.sim.rng.DeterministicRNG`
streams, so every trace is an exact function of (seed, parameters).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.k8s.objects import ContainerSpec, ObjectMeta, Pod, PodSpec, ResourceRequests
from repro.sim.rng import DeterministicRNG


def poisson_arrivals(rng: DeterministicRNG, rate_per_second: float, count: int) -> list[float]:
    """Arrival times of ``count`` events at the given mean rate."""
    stream = rng.stream("arrivals")
    times = []
    t = 0.0
    for _ in range(count):
        t += float(stream.exponential(1.0 / rate_per_second))
        times.append(t)
    return times


@dataclasses.dataclass(frozen=True)
class DiurnalProfile:
    """A periodic rate-modulation profile: daily sinusoid plus bursts.

    ``factor(t)`` multiplies a base arrival rate:

    - a sinusoidal day/night swing of ``amplitude`` peaking at
      ``peak_frac`` of the period (users submit during working hours);
    - optional additive burst windows ``(start_frac, end_frac, boost)``
      — the 9am pipeline kickoff, a gateway retry storm — expressed as
      fractions of the period.

    The profile is bounded: ``min_factor <= factor(t) <= max_factor``
    for every ``t``, with ``min_factor > 0`` (``amplitude < 1``), so the
    cumulative intensity is strictly increasing and the inverse-warp
    arrival construction in :func:`modulated_poisson_arrivals` is well
    defined.
    """

    amplitude: float = 0.6
    peak_frac: float = 0.5
    bursts: tuple[tuple[float, float, float], ...] = ((0.35, 0.40, 1.5),)

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        for start, end, boost in self.bursts:
            if not 0.0 <= start < end <= 1.0:
                raise ValueError(f"burst window [{start}, {end}] not within the period")
            if boost < 0.0:
                raise ValueError(f"burst boost must be >= 0, got {boost}")

    @property
    def min_factor(self) -> float:
        return 1.0 - self.amplitude

    @property
    def max_factor(self) -> float:
        # burst windows may overlap, and factor() adds every matching
        # boost — the sum is the bound that holds for any layout
        return 1.0 + self.amplitude + sum(b for _, _, b in self.bursts)

    def factor(self, t: float, period: float) -> float:
        """The rate multiplier at time ``t`` for a day of ``period`` s."""
        frac = (t / period) % 1.0
        value = 1.0 + self.amplitude * float(
            np.sin(2.0 * np.pi * (frac - self.peak_frac + 0.25))
        )
        for start, end, boost in self.bursts:
            if start <= frac < end:
                value += boost
        return value

    def factors(self, fracs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`factor` over period-fractions in [0, 1)."""
        values = 1.0 + self.amplitude * np.sin(2.0 * np.pi * (fracs - self.peak_frac + 0.25))
        for start, end, boost in self.bursts:
            values = values + boost * ((fracs >= start) & (fracs < end))
        return values


def modulated_poisson_arrivals(
    stream: np.random.Generator,
    count: int,
    base_rate: float,
    profile: DiurnalProfile,
    period: float,
    grid_points: int = 4096,
) -> np.ndarray:
    """``count`` arrival times of a Poisson process with rate
    ``base_rate * profile.factor(t)``.

    Uses the time-warp construction: draw a unit-rate homogeneous
    process, then map each point through the inverse of the cumulative
    intensity ``Λ(t) = base_rate * ∫ factor``.  Λ is tabulated on a
    periodic grid (``grid_points`` per day) and inverted with
    :func:`numpy.interp`; because Λ is strictly increasing
    (``profile.min_factor > 0``), the mapping preserves order, so the
    returned array is strictly increasing, non-negative, and an exact
    deterministic function of the stream state.
    """
    if count <= 0:
        return np.empty(0, dtype=float)
    if base_rate <= 0.0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    unit = np.cumsum(stream.exponential(1.0, size=count))
    # Tabulate Λ over whole periods until it covers the last unit point.
    dt = period / grid_points
    fracs = (np.arange(grid_points) + 0.5) / grid_points
    day_rates = base_rate * profile.factors(fracs)
    day_increments = day_rates * dt
    day_total = float(day_increments.sum())
    days = max(1, int(np.ceil(float(unit[-1]) / day_total)) + 1)
    increments = np.tile(day_increments, days)
    lam = np.concatenate(([0.0], np.cumsum(increments)))
    t_grid = np.arange(lam.size) * dt
    return np.interp(unit, lam, t_grid)


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(``s``) probabilities over ranks ``0..n-1``."""
    if n <= 0:
        raise ValueError(f"need at least one rank, got n={n}")
    weights = (np.arange(1, n + 1, dtype=float)) ** (-float(s))
    return weights / weights.sum()


class ZipfSampler:
    """Samples ranks ``0..n-1`` with Zipf(``s``) popularity.

    The paper's §4 registry claims (pull storms concentrate on a few hot
    images; content-addressed caches absorb the head of the
    distribution) are parameterized entirely by the skew ``s`` — this
    sampler makes ``s`` an explicit experimental knob.  Sampling is
    vectorized (inverse-CDF via ``searchsorted``) and deterministic for
    a given stream state.
    """

    def __init__(self, n: int, s: float = 1.1):
        self.n = int(n)
        self.s = float(s)
        self.weights = zipf_weights(self.n, self.s)
        self._cdf = np.cumsum(self.weights)
        self._cdf[-1] = 1.0  # guard float drift at the top bucket

    def sample(self, stream: np.random.Generator, size: int) -> np.ndarray:
        """``size`` ranks, lower rank == more popular."""
        if size <= 0:
            return np.empty(0, dtype=np.int64)
        return np.searchsorted(self._cdf, stream.random(size), side="right").astype(np.int64)


def weighted_choice_indices(
    stream: np.random.Generator, weights: np.ndarray, size: int
) -> np.ndarray:
    """``size`` indices drawn with the given (unnormalized) weights."""
    cdf = np.cumsum(np.asarray(weights, dtype=float))
    if cdf[-1] <= 0.0:
        raise ValueError("weights must have positive mass")
    cdf = cdf / cdf[-1]
    cdf[-1] = 1.0
    return np.searchsorted(cdf, stream.random(size), side="right").astype(np.int64)


class PodBatchGenerator:
    """Generates workflow-style pod batches (bioinformatics pipelines:
    many single-node steps of varying size, §2)."""

    def __init__(
        self,
        image: str,
        seed: int = 0,
        user_uid: int = 1000,
        cpu_choices: tuple[float, ...] = (1, 2, 4),
        duration_range: tuple[float, float] = (20.0, 120.0),
    ):
        self.image = image
        self.rng = DeterministicRNG(seed)
        self.user_uid = user_uid
        self.cpu_choices = cpu_choices
        self.duration_range = duration_range
        self._counter = 0

    def make_pod(self, name: str | None = None) -> Pod:
        self._counter += 1
        cpu = self.rng.choice(list(self.cpu_choices))
        lo, hi = self.duration_range
        duration = self.rng.uniform(lo, hi)
        return Pod(
            metadata=ObjectMeta(name=name or f"step-{self._counter:04}"),
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        name="main",
                        image=self.image,
                        resources=ResourceRequests(cpu=cpu),
                    )
                ],
                user_uid=self.user_uid,
                duration=duration,
            ),
        )

    def batch(self, n: int) -> list[Pod]:
        return [self.make_pod() for _ in range(n)]
