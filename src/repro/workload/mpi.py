"""Bulk-synchronous (BSP) MPI job model for OS-jitter studies.

§3.2: a per-node daemon "is wasteful and may introduce extra jitter".
Jitter hurts tightly-coupled codes through a max() effect: every
synchronization step waits for the slowest rank, so even rare per-rank
delays inflate *every* step as rank counts grow.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.sim.rng import DeterministicRNG


class NoiseSource:
    """Per-rank, per-step extra delay (seconds)."""

    name = "none"

    def sample(self, rng: np.random.Generator, n_ranks: int) -> np.ndarray:
        return np.zeros(n_ranks)


@dataclasses.dataclass
class DaemonNoise(NoiseSource):
    """A resident daemon: constant background steal plus occasional
    scheduling spikes when it wakes up (housekeeping, healthchecks)."""

    name: str = "dockerd"
    background_fraction: float = 0.002
    spike_probability: float = 0.02
    spike_seconds: float = 0.004

    def sample(self, rng: np.random.Generator, n_ranks: int) -> np.ndarray:
        spikes = (rng.random(n_ranks) < self.spike_probability) * self.spike_seconds
        return spikes


@dataclasses.dataclass
class ConmonNoise(NoiseSource):
    """A per-container monitor: dormant between container events."""

    name: str = "conmon"
    background_fraction: float = 0.00005
    spike_probability: float = 1e-5
    spike_seconds: float = 0.0005

    def sample(self, rng: np.random.Generator, n_ranks: int) -> np.ndarray:
        spikes = (rng.random(n_ranks) < self.spike_probability) * self.spike_seconds
        return spikes


@dataclasses.dataclass
class BSPJob:
    """n_ranks ranks computing `step_seconds` then synchronizing, for
    `n_steps` steps."""

    n_ranks: int
    n_steps: int = 200
    step_seconds: float = 0.010

    def run(self, noise: NoiseSource | None = None, seed: int = 0) -> float:
        """Total wall-clock; vectorized over steps x ranks."""
        rng = DeterministicRNG(seed).stream(f"bsp-{self.n_ranks}")
        background = getattr(noise, "background_fraction", 0.0) if noise else 0.0
        base = self.step_seconds * (1.0 + background)
        total = 0.0
        for _ in range(self.n_steps):
            delays = noise.sample(rng, self.n_ranks) if noise else None
            step = base + (float(delays.max()) if delays is not None else 0.0)
            total += step
        return total

    def slowdown(self, noise: NoiseSource, seed: int = 0) -> float:
        clean = self.n_steps * self.step_seconds
        return self.run(noise, seed=seed) / clean
