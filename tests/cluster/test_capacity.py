"""CapacityIndex must make the exact decisions of the linear-scan oracle.

The fleet engine's byte-identity between fast and naive modes rests on
this: :class:`repro.cluster.CapacityIndex` (O(log nodes)) and
:class:`repro.cluster.LinearCapacityScan` (O(nodes) reference) must
return the *same node id* for every alloc in any interleaving of
allocations and releases — not just a node that fits.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import CapacityIndex, LinearCapacityScan

NODE_CPUS = 8

# an op script: each entry either allocates (1..cap cores) or releases
# the oldest live allocation (value == 0)
op_script = st.lists(st.integers(min_value=0, max_value=NODE_CPUS), max_size=120)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=24), op_script)
def test_index_matches_linear_oracle(n_nodes, ops):
    index = CapacityIndex(n_nodes, NODE_CPUS)
    oracle = LinearCapacityScan(n_nodes, NODE_CPUS)
    live: list[tuple[int, int]] = []  # (node, req) in allocation order

    for op in ops:
        if op == 0:
            if not live:
                continue
            node, req = live.pop(0)
            index.release(node, req)
            oracle.release(node, req)
        else:
            got = index.alloc(op)
            expected = oracle.alloc(op)
            assert got == expected, (
                f"index placed req={op} on {got}, oracle on {expected}"
            )
            if got is not None:
                live.append((got, op))
        assert index.free == oracle.free
        assert index.total_free == oracle.total_free

    # drain: every release lands both structures back in step
    for node, req in live:
        index.release(node, req)
        oracle.release(node, req)
    assert index.free == oracle.free
    assert index.total_free == n_nodes * NODE_CPUS


# crash/restore script: -1 crashes the next node round-robin, -2
# restores the oldest downed node, 0 releases, 1..cap allocates
chaos_script = st.lists(
    st.integers(min_value=-2, max_value=NODE_CPUS), max_size=120
)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=24), chaos_script)
def test_index_matches_oracle_through_crash_restore(n_nodes, ops):
    """Down-node bookkeeping must be oracle-exact too: a crashed node is
    invisible to alloc, and restoring it brings back its full capacity
    in one step regardless of what was live when it died."""
    index = CapacityIndex(n_nodes, NODE_CPUS)
    oracle = LinearCapacityScan(n_nodes, NODE_CPUS)
    live: list[tuple[int, int]] = []
    downed: list[int] = []
    next_crash = 0

    for op in ops:
        if op == -1:
            node = next_crash % n_nodes
            next_crash += 1
            assert index.remove_node(node) == oracle.remove_node(node)
            if node not in downed:
                downed.append(node)
                # claims on the dead node die with it: the restore
                # resets free to full capacity, never via release
                live = [(n, r) for n, r in live if n != node]
        elif op == -2:
            if not downed:
                continue
            node = downed.pop(0)
            index.restore_node(node)
            oracle.restore_node(node)
        elif op == 0:
            if not live:
                continue
            node, req = live.pop(0)
            index.release(node, req)
            oracle.release(node, req)
        else:
            got = index.alloc(op)
            expected = oracle.alloc(op)
            assert got == expected
            if got is not None:
                assert got not in downed
                live.append((got, op))
        assert index.free == oracle.free
        assert index.down == oracle.down
        assert index.total_free == oracle.total_free

    for node in list(downed):
        index.restore_node(node)
        oracle.restore_node(node)
    assert index.free == oracle.free
    assert not index.down and not oracle.down


def test_exhaustion_returns_none_identically():
    index = CapacityIndex(2, 4)
    oracle = LinearCapacityScan(2, 4)
    for req in (4, 4, 1):
        assert index.alloc(req) == oracle.alloc(req)
    assert index.alloc(1) is None and oracle.alloc(1) is None


def test_best_fit_prefers_tightest_hole_lowest_id():
    index = CapacityIndex(3, 8)
    # carve different hole sizes: node0 -> 2 free, node1 -> 4 free, node2 -> 8
    assert index.alloc(8) == 0
    index.release(0, 2)
    assert index.alloc(8) == 1
    index.release(1, 4)
    # req=2 fits all three; tightest hole is node0's 2
    assert index.alloc(2) == 0
    # req=3 now fits node1 (4 free) and node2 (8 free): best fit is node1
    assert index.alloc(3) == 1
    # ties on the same free level prefer the lowest node id
    index2 = CapacityIndex(4, 4)
    assert index2.alloc(4) == 0
    assert index2.alloc(4) == 1
