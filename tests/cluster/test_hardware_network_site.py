"""Tests for hardware models, interconnect, and the Site facade."""

import pytest

from repro.cluster import CPUSpec, GPUDevice, HostNode, Interconnect, Site
from repro.cluster.hardware import microarch_compatible, microarch_index
from repro.core import SiteRequirements, Workflow, WorkflowStep
from repro.kernel import KernelConfig
from repro.sim import Environment


# -- hardware -------------------------------------------------------------------

def test_microarch_levels_ordered():
    assert microarch_index("x86-64") < microarch_index("x86-64-v4")
    assert microarch_compatible("x86-64-v2", "x86-64-v3")
    assert not microarch_compatible("x86-64-v4", "x86-64-v2")
    with pytest.raises(ValueError):
        microarch_index("arm-sve")


def test_node_exposes_gpu_devices_and_host_libs():
    node = HostNode(gpus=[GPUDevice("nvidia", "a100", 0), GPUDevice("nvidia", "a100", 1)])
    assert {"nvidia0", "nvidia1"} <= node.kernel.host_devices
    assert node.local_disk.tree.exists("/usr/lib64/libcuda.so.535.104")
    assert node.local_disk.tree.exists("/opt/cray/libmpi.so.40")
    assert node.gpu_driver_version() == "535.104"
    bare = HostNode()
    assert not bare.has_gpus and bare.gpu_driver_version() is None


# -- interconnect ------------------------------------------------------------------

def test_transfer_cost_scales_with_bytes():
    net = Interconnect()
    small = net.transfer_cost(1_000)
    large = net.transfer_cost(1_000_000_000)
    assert large > 100 * small
    assert net.stats["messages"] == 2


def test_broadcast_logarithmic():
    net = Interconnect()
    one = net.broadcast_cost(1_000_000, 2)
    many = net.broadcast_cost(1_000_000, 64)
    assert many == pytest.approx(6 * one, rel=0.01)  # log2(64) rounds
    assert net.broadcast_cost(1, 1) == 0.0


def test_rpc_roundtrip():
    net = Interconnect()
    assert net.rpc_cost() > 2 * net.nic.latency


# -- Site facade --------------------------------------------------------------------

def test_site_autoselects_engine_from_requirements():
    env = Environment()
    site = Site(env, SiteRequirements.security_hardened_center(), n_nodes=2)
    assert site.engine_cls.info.name == "apptainer"
    assert len(site.hosts) == 2
    assert all(h.kernel.config.allow_setuid_binaries is False for h in site.hosts)


def test_site_explicit_engine_override():
    from repro.engines import CharliecloudEngine

    env = Environment()
    site = Site(env, engine_cls=CharliecloudEngine, n_nodes=1)
    assert site.engine_cls is CharliecloudEngine


def test_site_publish_and_run_workflow():
    env = Environment()
    site = Site(env, SiteRequirements(), n_nodes=2)
    site.publish("hpc/tool", "v1", "FROM alpine:3.18\nRUN write /opt/t 1000000")
    wf = Workflow("mini", [
        WorkflowStep(name="only", image="r.site/hpc/tool:v1", duration=20, cores=2),
    ])
    proc = site.run_workflow(wf)
    makespan = env.run(until=proc)
    assert makespan >= 20
    assert len(site.wlm.accounting.by_comment_prefix("workflow:mini/")) == 1


def test_site_decision_report():
    env = Environment()
    site = Site(env, SiteRequirements.conservative_center(), n_nodes=1)
    text = site.decision_report().render()
    assert "conservative-center" in text and "sarus" in text
