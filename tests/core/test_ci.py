"""Tests for the CI/CD container-update automation (§2)."""

import pytest

from repro.core.ci import CIError, ContainerCI, RegressionCheck
from repro.oci.catalog import BaseImageCatalog, build_ubuntu_base
from repro.registry import OCIDistributionRegistry
from repro.signing import CosignClient, KeyPair, TransparencyLog

DOCKERFILE = """FROM ubuntu:22.04
RUN install-pkg solver-deps 20 500000
RUN write /opt/app/solver 3000000
ENTRYPOINT /opt/app/solver
"""

CHECKS = [
    RegressionCheck("solver-present", lambda fs, img: fs.exists("/opt/app/solver")),
    RegressionCheck("entrypoint-set", lambda fs, img: img.config.entrypoint != ()),
]


@pytest.fixture
def ci():
    registry = OCIDistributionRegistry(name="site")
    log = TransparencyLog()
    return ContainerCI(
        registry,
        signing_key=KeyPair("ci-bot"),
        cosign=CosignClient(log),
    ), registry, log


def test_first_pass_builds_and_signs(ci):
    pipeline, registry, log = ci
    pipeline.track("hpc/solver", "stable", DOCKERFILE, checks=CHECKS)
    [report] = pipeline.run_pipeline(now=0.0)
    assert report["action"] == "rebuilt"
    assert registry.resolve("hpc/solver", "stable") == report["digest"]
    assert len(log) == 1  # cosign signature logged


def test_second_pass_is_noop(ci):
    pipeline, registry, _ = ci
    pipeline.track("hpc/solver", "stable", DOCKERFILE, checks=CHECKS)
    pipeline.run_pipeline(now=0.0)
    [report] = pipeline.run_pipeline(now=3600.0)
    assert report["action"] == "up-to-date"


def test_base_image_update_triggers_rebuild(ci):
    """The §2 scenario: the host/base OS gets a security update; tracked
    containers must be rebuilt automatically."""
    pipeline, registry, _ = ci
    pipeline.track("hpc/solver", "stable", DOCKERFILE, checks=CHECKS)
    first = pipeline.run_pipeline(now=0.0)[0]

    def patched_ubuntu():
        image = build_ubuntu_base()
        # the patched base carries an updated libc
        from repro.oci.layer import Layer
        from repro.fs import FileTree

        fix = FileTree()
        fix.create_file("/usr/lib/libc.so.6", size=2_000_100, mode=0o755)
        return type(image)(image.config, [*image.layers, Layer(fix, created_by="CVE fix")])

    pipeline.catalog.register("ubuntu:22.04", patched_ubuntu)
    second = pipeline.run_pipeline(now=7200.0)[0]
    assert second["action"] == "rebuilt"
    assert second["digest"] != first["digest"]


def test_failing_regression_check_blocks_push(ci):
    pipeline, registry, _ = ci
    bad_checks = CHECKS + [RegressionCheck("impossible", lambda fs, img: fs.exists("/nope"))]
    pipeline.track("hpc/broken", "v1", DOCKERFILE, checks=bad_checks)
    [report] = pipeline.run_pipeline(now=0.0)
    assert report["action"] == "blocked"
    assert report["failed_checks"] == ["impossible"]
    from repro.registry import RegistryError

    with pytest.raises(RegistryError):
        registry.resolve("hpc/broken", "v1")


def test_recipe_update_rebuilds(ci):
    pipeline, registry, _ = ci
    pipeline.track("hpc/solver", "stable", DOCKERFILE, checks=CHECKS)
    pipeline.run_pipeline(now=0.0)
    pipeline.update_recipe("hpc/solver", "stable",
                           DOCKERFILE.replace("3000000", "3100000"))
    [report] = pipeline.run_pipeline(now=100.0)
    assert report["action"] == "rebuilt"
    with pytest.raises(CIError):
        pipeline.update_recipe("ghost", "v9", DOCKERFILE)


def test_history_accumulates(ci):
    pipeline, _, _ = ci
    tracked = pipeline.track("hpc/solver", "stable", DOCKERFILE)
    pipeline.run_pipeline(now=0.0)
    pipeline.run_pipeline(now=1.0)
    assert [h["action"] for h in tracked.history] == ["rebuilt", "up-to-date"]
