"""Tests for requirements, compliance, selection, decision documents,
the optimizer, workflows, and module generation."""

import pytest

from repro.cluster import CPUSpec, GPUDevice, HostNode
from repro.core import (
    ContainerOptimizer,
    DecisionReport,
    HPCRequirement,
    ImageVariant,
    ModuleError,
    SiteRequirements,
    Workflow,
    WorkflowError,
    WorkflowStep,
    engine_compliance,
    generate_module_file,
    rank_engines,
    rank_registries,
    rank_scenarios,
    select_stack,
)
from repro.core.optimizer import OptimizerError
from repro.engines import (
    ApptainerEngine,
    CharliecloudEngine,
    DockerEngine,
    PodmanEngine,
    SarusEngine,
    ShifterEngine,
)
from repro.oci import Builder
from repro.registry.registries import Gitea, Harbor, Quay, Shpc


# -- compliance ------------------------------------------------------------------

def test_docker_fails_no_root_daemon():
    site = SiteRequirements(
        name="t", required=frozenset({HPCRequirement.NO_ROOT_DAEMON})
    )
    report = engine_compliance(DockerEngine, site)
    assert not report.compliant
    assert HPCRequirement.NO_ROOT_DAEMON in report.violated


def test_sarus_fails_on_hardened_site():
    site = SiteRequirements.security_hardened_center()
    report = engine_compliance(SarusEngine, site)
    assert not report.compliant
    assert HPCRequirement.NO_SETUID in report.violated


def test_charliecloud_passes_hardened_site():
    site = SiteRequirements.security_hardened_center()
    report = engine_compliance(CharliecloudEngine, site)
    assert report.compliant


def test_live_probe_catches_deploy_failure():
    """Shifter's setuid dependency is caught by actually instantiating it
    against the hardened kernel, not just by flags."""
    site = SiteRequirements(name="h", kernel=SiteRequirements.security_hardened_center().kernel)
    report = engine_compliance(ShifterEngine, site)
    assert any("deploy probe failed" in msg for msg in report.violated.values())


# -- selection ---------------------------------------------------------------------

def test_profiles_select_expected_engines():
    assert rank_engines(SiteRequirements.conservative_center())[0][0] is SarusEngine
    assert rank_engines(SiteRequirements.security_hardened_center())[0][0] is ApptainerEngine
    assert rank_engines(SiteRequirements.cloud_converged_center())[0][0] is PodmanEngine


def test_registry_ranking_prefers_harbor_or_quay():
    """§5.2: 'the remaining candidates for an HPC-centric container setup
    are Project Quay and Harbor'."""
    site = SiteRequirements.cloud_converged_center()
    ranking = rank_registries(site)
    top_two = {cls.traits.name for cls, _, violations in ranking[:2] if not violations}
    assert top_two == {"harbor", "quay"}
    # CI/CD registries and Library-API-only ones rank below
    names = [cls.traits.name for cls, _, _ in ranking]
    assert names.index("gitea") > 1 and names.index("shpc") > 1


def test_scenario_ranking_matches_section_66():
    site = SiteRequirements.cloud_converged_center()
    ranking = rank_scenarios(site)
    names = [cls.name for cls, _, _ in ranking]
    assert names[0] == "kubelet-in-allocation"
    assert names[1] == "knoc-virtual-kubelet"


def test_select_stack_full():
    stack = select_stack(SiteRequirements.cloud_converged_center())
    assert stack["engine"].info.name == "podman"
    assert stack["registry"].traits.name == "harbor"
    assert stack["scenario"].name == "kubelet-in-allocation"
    no_k8s = select_stack(SiteRequirements.conservative_center())
    assert no_k8s["scenario"] is None


def test_decision_report_renders():
    report = DecisionReport(SiteRequirements.security_hardened_center())
    text = report.render(include_tables=True)
    assert "security-hardened-center" in text
    assert "apptainer" in text
    assert "Table 1" in text
    assert "violates" in text  # at least one engine fails visibly


# -- optimizer -----------------------------------------------------------------------

@pytest.fixture
def variants():
    builder = Builder()
    image = builder.build_dockerfile("FROM ubuntu:22.04\nRUN write /opt/s 1000")
    return [
        ImageVariant(ref="app:v2", image=image, microarch="x86-64-v2"),
        ImageVariant(ref="app:v3", image=image, microarch="x86-64-v3",
                     mpi_flavor="mpich"),
        ImageVariant(ref="app:v4-cuda", image=image, microarch="x86-64-v4",
                     cuda_driver="535.0"),
        ImageVariant(ref="app:openmpi", image=image, microarch="x86-64-v2",
                     mpi_flavor="openmpi"),
    ]


def test_optimizer_picks_highest_compatible_microarch(variants):
    opt = ContainerOptimizer(SiteRequirements())
    v3_node = HostNode(name="v3", cpu=CPUSpec(microarch="x86-64-v3"))
    assert opt.select_variant(variants, v3_node).ref == "app:v3"
    v4_gpu_node = HostNode(
        name="v4", cpu=CPUSpec(microarch="x86-64-v4"),
        gpus=[GPUDevice("nvidia", "h100", 0, driver_version="535.104")],
    )
    assert opt.select_variant(variants, v4_gpu_node).ref == "app:v4-cuda"


def test_optimizer_filters_incompatible_abi(variants):
    opt = ContainerOptimizer(SiteRequirements(mpi_flavor="cray-mpich"))
    node = HostNode(name="n", cpu=CPUSpec(microarch="x86-64-v2"))
    compatible = opt.compatible_variants(variants, node)
    refs = {v.ref for v in compatible}
    assert "app:openmpi" not in refs  # MPI ABI mismatch with cray-mpich host
    assert "app:v3" not in refs       # microarch too new
    assert "app:v4-cuda" not in refs  # no GPU on node
    assert refs == {"app:v2"}


def test_optimizer_no_compatible_variant():
    opt = ContainerOptimizer(SiteRequirements())
    builder = Builder()
    image = builder.build_dockerfile("FROM alpine\nRUN touch /x")
    only_v4 = [ImageVariant(ref="v4", image=image, microarch="x86-64-v4")]
    old_node = HostNode(name="old", cpu=CPUSpec(microarch="x86-64-v2"))
    with pytest.raises(OptimizerError, match="no variant"):
        opt.select_variant(only_v4, old_node)


def test_optimizer_runtime_plan(variants):
    site = SiteRequirements()
    opt = ContainerOptimizer(site)
    node = HostNode(
        name="gpu", cpu=CPUSpec(microarch="x86-64-v4"),
        gpus=[GPUDevice("nvidia", "h100", 0, driver_version="535.104")],
    )
    sarus = SarusEngine(node)
    plan = opt.plan(variants, node, sarus)
    assert plan.rootfs_strategy == "squash-kernel"
    assert "nvidia0" in plan.devices
    assert plan.env["REPRO_CUDA_DRIVER"] == "535.0"
    assert plan.expected_speedup > 1.3
    ch = CharliecloudEngine(node)
    plan_ch = opt.plan(variants, node, ch)
    assert plan_ch.rootfs_strategy in ("dir", "squashfuse")
    assert plan_ch.warnings


# -- workflows --------------------------------------------------------------------------

def test_workflow_validation():
    with pytest.raises(WorkflowError, match="unknown"):
        Workflow("w", [WorkflowStep(name="a", image="x", after=("ghost",))])
    with pytest.raises(WorkflowError, match="cycle"):
        Workflow("w", [
            WorkflowStep(name="a", image="x", after=("b",)),
            WorkflowStep(name="b", image="x", after=("a",)),
        ])


def test_workflow_topological_batches():
    wf = Workflow("pipe", [
        WorkflowStep(name="qc", image="x"),
        WorkflowStep(name="align", image="x", after=("qc",)),
        WorkflowStep(name="call", image="x", after=("align",)),
        WorkflowStep(name="stats", image="x", after=("qc",)),
    ])
    batches = wf.topological_batches()
    assert batches[0] == ["qc"]
    assert sorted(batches[1]) == ["align", "stats"]
    assert batches[2] == ["call"]


# -- module generation ----------------------------------------------------------------------

def test_module_generation_for_shpc_engines():
    from repro.oci.image import ImageConfig

    config = ImageConfig(entrypoint=("/opt/tool/bin",), env={"OMP_NUM_THREADS": "4"})
    text = generate_module_file(ApptainerEngine, "hpc/tool:v1", config)
    assert 'set_alias("bin"' in text
    assert 'setenv("OMP_NUM_THREADS", "4")' in text
    podman_text = generate_module_file(PodmanEngine, "hpc/tool:v1", config)
    assert "wrapper script required" in podman_text


def test_module_generation_gated():
    from repro.oci.image import ImageConfig

    with pytest.raises(ModuleError, match="no module-system"):
        generate_module_file(CharliecloudEngine, "x:y", ImageConfig())
    with pytest.raises(ModuleError, match="announced"):
        generate_module_file(SarusEngine, "x:y", ImageConfig())
