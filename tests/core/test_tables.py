"""Tests that the regenerated Tables 1–5 carry the paper's key cells."""

import pytest

from repro.core import (
    render_table,
    table1_engines,
    table2_formats,
    table3_integrations,
    table4_registries,
    table5_registry_features,
)


def by_key(rows, key_field, key):
    for row in rows:
        if row[key_field] == key:
            return row
    raise KeyError(key)


def test_table1_has_all_nine_engines_in_paper_order():
    rows = table1_engines()
    assert [r["engine"] for r in rows] == [
        "docker", "podman", "podman-hpc", "shifter", "sarus",
        "charliecloud", "apptainer", "singularity-ce", "enroot",
    ]


@pytest.mark.parametrize(
    "engine,field,expected",
    [
        ("docker", "monitor", "per-machine (dockerd)"),
        ("podman", "monitor", "per-container (conmon)"),
        ("shifter", "rootless_fs", "suid"),
        ("podman-hpc", "rootless_fs", "SquashFUSE, fuse-overlayfs"),
        ("charliecloud", "rootless_fs", "Dir, SquashFUSE"),
        ("apptainer", "runtime", "runc"),
        ("singularity-ce", "runtime", "crun"),
        ("shifter", "oci_hooks", "no"),
        ("sarus", "oci_hooks", "yes"),
        ("enroot", "oci_container", "partial"),
        ("docker", "oci_container", "yes"),
        ("charliecloud", "language", "C"),
        ("sarus", "language", "C++"),
    ],
)
def test_table1_key_cells(engine, field, expected):
    assert by_key(table1_engines(), "engine", engine)[field] == expected


@pytest.mark.parametrize(
    "engine,field,expected",
    [
        ("docker", "transparent_conversion", False),
        ("podman-hpc", "transparent_conversion", True),
        ("sarus", "native_sharing", True),
        ("shifter", "native_sharing", False),
        ("apptainer", "native_sharing", True),
        ("charliecloud", "transparent_conversion", False),
        ("docker", "namespacing", "full"),
        ("sarus", "namespacing", "user+mount"),
        ("apptainer", "encryption", True),
        ("shifter", "encryption", False),
        ("podman", "signature_verification", "gpg, sigstore"),
        ("docker", "signature_verification", "notary"),
        ("sarus", "signature_verification", "-"),
    ],
)
def test_table2_key_cells(engine, field, expected):
    assert by_key(table2_formats(), "engine", engine)[field] == expected


@pytest.mark.parametrize(
    "engine,field,expected",
    [
        ("shifter", "wlm_integration", "spank"),
        ("enroot", "wlm_integration", "spank"),
        ("sarus", "wlm_integration", "partial-hooks"),
        ("docker", "wlm_integration", "no"),
        ("enroot", "gpu", "nvidia-only"),
        ("apptainer", "gpu", "yes"),
        ("charliecloud", "gpu", "manual"),
        ("shifter", "library_hookup", "mpich"),
        ("docker", "build_tool", True),
        ("shifter", "build_tool", False),
        ("docker", "contributors", 486),
        ("podman-hpc", "contributors", 3),
        ("charliecloud", "docs_user", "+++"),
        ("apptainer", "module_integration", "shpc"),
        ("charliecloud", "module_integration", "no"),
    ],
)
def test_table3_key_cells(engine, field, expected):
    assert by_key(table3_integrations(), "engine", engine)[field] == expected


def test_table4_has_all_seven_registries():
    rows = table4_registries()
    assert [r["registry"] for r in rows] == [
        "quay", "harbor", "gitlab", "gitea", "shpc", "hinkskalle", "zot",
    ]


@pytest.mark.parametrize(
    "registry,field,expected",
    [
        ("quay", "proxying", "auto"),
        ("harbor", "mirroring", "push, pull"),
        ("quay", "mirroring", "pull"),
        ("gitea", "proxying", "none"),
        ("shpc", "protocols", "Library API"),
        ("hinkskalle", "protocols", "Library API, OCI v2"),
        ("zot", "protocols", "OCI v1"),
        ("gitlab", "focus", "Git hosting, CI/CD"),
    ],
)
def test_table4_key_cells(registry, field, expected):
    assert by_key(table4_registries(), "registry", registry)[field] == expected


@pytest.mark.parametrize(
    "registry,field,expected",
    [
        ("quay", "squashing", "on-demand"),
        ("harbor", "squashing", "no"),
        ("quay", "multi_tenancy", "Organization"),
        ("harbor", "multi_tenancy", "Project"),
        ("gitea", "multi_tenancy", "no"),
        ("harbor", "quota", "per-project"),
        ("gitlab", "signing", False),
        ("zot", "signing", True),
        ("shpc", "formats", "SIF"),
        ("hinkskalle", "formats", "SIF, OCI"),
    ],
)
def test_table5_key_cells(registry, field, expected):
    assert by_key(table5_registry_features(), "registry", registry)[field] == expected


def test_render_table_text():
    text = render_table(table1_engines(), title="Table 1")
    assert text.startswith("Table 1")
    assert "docker" in text and "enroot" in text
    assert render_table([], "Empty") == "Empty\n(empty)\n"
