"""End-to-end workflow execution on the WLM with containerized steps."""

import pytest

from repro.cluster import HostNode
from repro.core import Workflow, WorkflowError, WorkflowStep
from repro.engines import SarusEngine
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    hosts = [HostNode(name=f"n{i}", env=env) for i in range(3)]
    from repro.wlm import SlurmController

    wlm = SlurmController(env, hosts)
    engines = {h.name: SarusEngine(h) for h in hosts}
    registry = OCIDistributionRegistry(name="site")
    builder = Builder(BaseImageCatalog())
    for tool in ("qc", "align", "call"):
        img = builder.build_dockerfile(
            f"FROM ubuntu:22.04\nRUN write /opt/{tool} 1000000\nENTRYPOINT /opt/{tool}"
        )
        registry.push_image(f"bio/{tool}", "v1", img)
    return env, wlm, engines, registry


def test_pipeline_respects_dependencies(setup):
    env, wlm, engines, registry = setup
    wf = Workflow("rnaseq", [
        WorkflowStep(name="qc", image="r.local/bio/qc:v1", duration=30),
        WorkflowStep(name="align", image="r.local/bio/align:v1", duration=60, after=("qc",)),
        WorkflowStep(name="call", image="r.local/bio/call:v1", duration=40, after=("align",)),
    ])
    proc = wf.run_on_wlm(env, wlm, engines, registry)
    makespan = env.run(until=proc)
    assert makespan >= 130  # strictly serial chain
    qc, align, call = wf.steps["qc"], wf.steps["align"], wf.steps["call"]
    assert qc.finished_at <= align.started_at
    assert align.finished_at <= call.started_at
    # every step accounted in the WLM with workflow attribution
    records = wlm.accounting.by_comment_prefix("workflow:rnaseq/")
    assert len(records) == 3


def test_parallel_steps_overlap(setup):
    env, wlm, engines, registry = setup
    wf = Workflow("fanout", [
        WorkflowStep(name="prep", image="r.local/bio/qc:v1", duration=10),
        WorkflowStep(name="shard-a", image="r.local/bio/align:v1", duration=50, after=("prep",)),
        WorkflowStep(name="shard-b", image="r.local/bio/align:v1", duration=50, after=("prep",)),
    ])
    proc = wf.run_on_wlm(env, wlm, engines, registry)
    makespan = env.run(until=proc)
    assert makespan < 10 + 50 + 50  # the shards ran concurrently
    a, b = wf.steps["shard-a"], wf.steps["shard-b"]
    assert abs(a.started_at - b.started_at) < 5
