"""The same workflow abstraction over the Kubernetes path (§6.5)."""

import pytest

from repro.core import Workflow, WorkflowStep
from repro.scenarios import KubeletInAllocationScenario
from repro.sim import Environment


def test_workflow_runs_through_kubelet_in_allocation():
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=2)
    ready = scenario.provision()
    env.run(until=ready)

    wf = Workflow("k8s-pipe", [
        WorkflowStep(name="prep", image="registry.site.local/pipelines/step:v1",
                     duration=20, cores=2),
        WorkflowStep(name="shard-a", image="registry.site.local/pipelines/step:v1",
                     duration=40, cores=2, after=("prep",)),
        WorkflowStep(name="shard-b", image="registry.site.local/pipelines/step:v1",
                     duration=40, cores=2, after=("prep",)),
        WorkflowStep(name="merge", image="registry.site.local/pipelines/step:v1",
                     duration=15, cores=2, after=("shard-a", "shard-b")),
    ], user_uid=1000)

    proc = wf.run_on_k8s(env, scenario.k3s.api,
                         submit_fn=lambda pod: scenario.submit([pod]))
    makespan = env.run(until=proc)
    # serial chain prep -> shards (parallel) -> merge
    assert 75 <= makespan < 140
    shards = (wf.steps["shard-a"], wf.steps["shard-b"])
    assert abs(shards[0].started_at - shards[1].started_at) < 5
    assert wf.steps["merge"].started_at >= max(s.finished_at for s in shards)
    # all of it on allocation nodes, accounted via the hosting job
    metrics = scenario.metrics()
    assert metrics.pods_completed == 4
    assert metrics.wlm_accounting_coverage == 1.0
