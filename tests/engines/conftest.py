"""Shared fixtures for engine tests."""

import pytest

from repro.cluster import GPUDevice, HostNode
from repro.kernel import KernelConfig
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry


@pytest.fixture
def node():
    return HostNode(
        name="nid0001",
        kernel_config=KernelConfig.modern_hpc(),
        gpus=[GPUDevice(vendor="nvidia", model="a100", index=0)],
    )


@pytest.fixture
def registry():
    reg = OCIDistributionRegistry(name="site-registry")
    builder = Builder(BaseImageCatalog())
    img = builder.build_dockerfile(
        "FROM ubuntu:22.04\n"
        "RUN write /opt/app/solver 5000000\n"
        "ENTRYPOINT /opt/app/solver\n"
    )
    reg.push_image("hpc/solver", "v1", img)
    py = builder.build_dockerfile("FROM python:3.11\nRUN pip-install scipy 100")
    reg.push_image("hpc/py-pipeline", "v1", py)
    return reg


@pytest.fixture
def user(node):
    return node.kernel.spawn(uid=1000)
