"""§4.1.6/§3.2: debuggers and uid semantics.

The HPC single-uid model means a user can ptrace (profile, debug) their
own containerized processes; the Docker daemon model puts containers
under root, breaking user-driven debugging."""

import pytest

from repro.cluster import HostNode
from repro.engines import DockerEngine, SarusEngine
from repro.kernel.errors import EPERM
from repro.oci import Builder


@pytest.fixture
def image():
    return Builder().build_dockerfile("FROM ubuntu:22.04\nRUN write /opt/app 100000")


def test_user_can_debug_own_hpc_container(node, registry, user, image):
    sarus = SarusEngine(node)
    result = sarus.run(image, user)
    target = result.container.proc
    # same (host) uid: a debugger launched by the user attaches fine
    debugger = node.kernel.spawn(parent=user, argv=("gdb",))
    node.kernel.ptrace_attach(debugger, target)
    assert target.ptraced_by == debugger.pid


def test_user_cannot_debug_docker_container(node, registry, user, image):
    docker = DockerEngine(node)
    docker.start_daemon()
    result = docker.run(image, user)
    target = result.container.proc
    assert target.creds.uid == 0  # child of the root daemon
    debugger = node.kernel.spawn(parent=user, argv=("gdb",))
    with pytest.raises(EPERM):
        node.kernel.ptrace_attach(debugger, target)


def test_files_created_in_hpc_container_owned_by_job_user(node, registry, user, image):
    """§3.2: 'files created by processes in the container have the
    UID/GID of the user launching the job'."""
    sarus = SarusEngine(node)
    result = sarus.run(image, user)
    proc = result.container.proc
    # the single mapping is identity on the invoking uid: the process
    # appears as uid 1000 inside AND outside, so files land correctly
    assert proc.container_uid() == user.creds.uid
    assert proc.userns.uid_to_host(user.creds.uid) == user.creds.uid
    assert not proc.userns.maps_multiple_uids()
    # container-root (uid 0) simply does not exist in this namespace
    from repro.kernel.errors import EINVAL

    with pytest.raises(EINVAL):
        proc.userns.uid_to_host(0)
