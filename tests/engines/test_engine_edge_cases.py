"""Remaining engine edge cases: cache sharing in the Singularity family,
docker SIF refusal, podman-hpc SIF passthrough, invalid states."""

import pytest

from repro.cluster import HostNode
from repro.engines import (
    ApptainerEngine,
    DockerEngine,
    EngineError,
    PodmanHPCEngine,
    SingularityCEEngine,
)
from repro.oci import Builder
from repro.oci.runtime import ContainerState
from repro.oci.sif import SIFImage


def test_singularity_sif_cache_shared_between_users(node, registry):
    """Table 2: native format sharing 'yes' for the Singularity family —
    SIF files are plain files anyone can read."""
    engine = ApptainerEngine(node)
    first = engine.pull("hpc/solver", "v1", registry, user_uid=1000)
    assert not first.from_cache
    second = engine.pull("hpc/solver", "v1", registry, user_uid=1001)
    assert second.from_cache
    assert second.pull_cost == 0.0


def test_docker_refuses_sif(node, user):
    apptainer = ApptainerEngine(node)
    sif = apptainer.build("Bootstrap: docker\nFrom: alpine\n%post\n    touch /x")
    docker = DockerEngine(node)
    docker.start_daemon()
    with pytest.raises(EngineError, match="plain OCI"):
        docker.run(sif, user)


def test_podman_hpc_runs_sif_via_squashfuse(node, user):
    apptainer = ApptainerEngine(node)
    sif = apptainer.build("Bootstrap: docker\nFrom: alpine\n%post\n    write /t 1000")
    engine = PodmanHPCEngine(node)
    result = engine.run(sif, user)
    assert result.container.state is ContainerState.RUNNING
    assert result.container.rootfs.driver.name == "squashfuse"


def test_singularity_ce_and_apptainer_differ_in_runtime(node):
    assert ApptainerEngine(node).runtime.name == "runc"
    assert SingularityCEEngine(node).runtime.name == "crun"


def test_run_with_explicit_command_overrides_entrypoint(node, registry, user):
    engine = ApptainerEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user, command=("/bin/sh", "-c", "hostname"))
    assert result.container.proc.argv == ("/bin/sh", "-c", "hostname")


def test_engine_stats_track_activity(node, registry, user):
    engine = ApptainerEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    engine.run(pulled, user)
    engine.run(pulled, user)
    assert engine.stats["pulls"] == 1
    assert engine.stats["runs"] == 2
    assert engine.stats["conversions"] == 1
