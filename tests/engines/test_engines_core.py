"""Core engine behaviour: lifecycle, rootless mechanisms, caches,
monitors, namespacing — the substance behind Tables 1 and 2."""

import pytest

from repro.cluster import HostNode
from repro.engines import (
    ALL_ENGINES,
    ApptainerEngine,
    CharliecloudEngine,
    DockerEngine,
    EngineError,
    EnrootEngine,
    PodmanEngine,
    PodmanHPCEngine,
    SarusEngine,
    ShifterEngine,
    SingularityCEEngine,
)
from repro.kernel import KernelConfig, NamespaceKind
from repro.oci.runtime import ContainerState


def make_engine(cls, node, **kwargs):
    engine = cls(node, **kwargs)
    if isinstance(engine, DockerEngine):
        engine.start_daemon()
    return engine


def pull_and_prepare(engine, registry, user, repo="hpc/solver"):
    pulled = engine.pull(repo, "v1", registry)
    if isinstance(engine, EnrootEngine):
        from repro.oci.image import OCIImage

        assert isinstance(pulled.image, OCIImage)
        engine.import_image(repo, pulled.image)
    return pulled


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_every_engine_runs_a_container(engine_cls, node, registry, user):
    engine = make_engine(engine_cls, node)
    pulled = pull_and_prepare(engine, registry, user)
    result = engine.run(pulled, user)
    assert result.container.state is ContainerState.RUNNING
    assert result.startup_seconds > 0
    assert result.timings["pull"] >= 0


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_namespacing_matches_capability(engine_cls, node, registry, user):
    engine = make_engine(engine_cls, node)
    pulled = pull_and_prepare(engine, registry, user)
    result = engine.run(pulled, user)
    created = result.container.namespaces_created()
    assert NamespaceKind.USER in created
    assert NamespaceKind.MNT in created
    if engine.capabilities.namespacing == "full":
        assert NamespaceKind.NET in created
    else:
        # HPC engines skip NET/IPC (§3.2)
        assert NamespaceKind.NET not in created
        assert NamespaceKind.IPC not in created


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_rootfs_driver_matches_declared_rootless_fs(engine_cls, node, registry, user):
    """Table 1's Rootless-FS column, checked against the actual mount."""
    engine = make_engine(engine_cls, node)
    pulled = pull_and_prepare(engine, registry, user)
    result = engine.run(pulled, user)
    driver = result.container.rootfs.driver.name
    declared = engine.capabilities.rootless_fs
    mapping = {
        "fuse-overlayfs": {"fuse-overlayfs"},
        "suid": {"bind"},           # staged kernel-squash mount, bind-wrapped
        "SquashFUSE": {"squashfuse", "fuse-overlayfs"},
        "Dir": {"bind"},
        "fakeroot": {"bind", "squashfuse"},
    }
    allowed = set()
    for mech in declared:
        allowed |= mapping[mech]
    if not engine.capabilities.rootless_fs:
        allowed = {"overlay"}
    if isinstance(engine, DockerEngine):
        allowed |= {"overlay"}  # root daemon uses the kernel driver
    assert driver in allowed, f"{engine.info.name}: {driver} not in {allowed}"


def test_docker_requires_daemon(node, registry, user):
    docker = DockerEngine(node)
    pulled = docker.pull("hpc/solver", "v1", registry)
    with pytest.raises(EngineError, match="dockerd"):
        docker.run(pulled, user)
    docker.start_daemon()
    result = docker.run(pulled, user)
    assert any("daemon" in w for w in result.warnings)


def test_docker_containers_children_of_root_daemon(node, registry, user):
    docker = make_engine(DockerEngine, node)
    pulled = docker.pull("hpc/solver", "v1", registry)
    result = docker.run(pulled, user)
    # accounting problem: the container's parent chain leads to dockerd, not the user
    proc = result.container.proc
    assert proc.parent is docker.daemon.proc
    assert docker.daemon.runs_as_root


def test_podman_conmon_per_container_as_user(node, registry, user):
    podman = PodmanEngine(node)
    pulled = podman.pull("hpc/solver", "v1", registry)
    podman.run(pulled, user)
    podman.run(pulled, user)
    assert len(podman.monitors) == 2
    assert all(m.runs_as_user for m in podman.monitors)
    assert all(m.proc.creds.uid == 1000 for m in podman.monitors)


def test_layer_cache_reduces_second_pull(node, registry, user):
    podman = PodmanEngine(node)
    first = podman.pull("hpc/solver", "v1", registry)
    second = podman.pull("hpc/solver", "v1", registry)
    assert second.pull_cost < first.pull_cost


def test_podman_hpc_transparent_conversion_cached_per_user(node, registry):
    engine = PodmanHPCEngine(node)
    alice = node.kernel.spawn(uid=1000)
    bob = node.kernel.spawn(uid=1001)
    pulled = engine.pull("hpc/solver", "v1", registry)
    r1 = engine.run(pulled, alice)
    assert "convert" in r1.timings
    r2 = engine.run(pulled, alice)
    assert "convert" not in r2.timings  # cached for alice
    r3 = engine.run(pulled, bob)
    assert "convert" in r3.timings  # no native sharing (Table 2)


def test_sarus_conversion_shared_between_users(node, registry):
    engine = SarusEngine(node)
    alice = node.kernel.spawn(uid=1000)
    bob = node.kernel.spawn(uid=1001)
    pulled = engine.pull("hpc/solver", "v1", registry)
    r1 = engine.run(pulled, alice)
    assert "convert" in r1.timings
    r2 = engine.run(pulled, bob)
    assert "convert" not in r2.timings  # central root-owned store (Table 2)


def test_shifter_and_sarus_refuse_hardened_sites():
    hardened = HostNode(kernel_config=KernelConfig.hardened())
    with pytest.raises(EngineError, match="setuid"):
        ShifterEngine(hardened)
    with pytest.raises(EngineError, match="setuid"):
        SarusEngine(hardened)


def test_charliecloud_works_on_hardened_site(registry):
    hardened = HostNode(kernel_config=KernelConfig.hardened())
    engine = CharliecloudEngine(hardened)
    user = hardened.kernel.spawn(uid=1000)
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user)
    assert result.container.state is ContainerState.RUNNING
    assert "extract" in result.timings  # dir mode extracts every run


def test_charliecloud_no_transparent_cache(node, registry, user):
    engine = CharliecloudEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    r1 = engine.run(pulled, user)
    r2 = engine.run(pulled, user)
    assert "extract" in r1.timings and "extract" in r2.timings


def test_charliecloud_squashfuse_mode(node, registry, user):
    engine = CharliecloudEngine(node, storage="squashfuse")
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user)
    assert result.container.rootfs.driver.name == "squashfuse"
    with pytest.raises(EngineError):
        CharliecloudEngine(node, storage="btrfs")


def test_enroot_requires_explicit_import(node, registry, user):
    engine = EnrootEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    with pytest.raises(EngineError, match="not imported"):
        engine.run(pulled, user)
    engine.import_image("solver", pulled.image)
    result = engine.run(pulled, user)
    assert result.container.state is ContainerState.RUNNING


def test_hooks_rejected_by_hookless_engines(node, registry, user):
    from repro.oci.hooks import HookPoint, HookRegistry

    engine = ShifterEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    hooks = HookRegistry()
    hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: None, name="x")
    with pytest.raises(EngineError, match="no hook framework"):
        engine.run(pulled, user, extra_hooks=hooks)


def test_singularity_hooks_require_root_installation(node, registry, user):
    engine = ApptainerEngine(node)
    from repro.oci.hooks import HookPoint

    engine.site_hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: None, name="acc")
    pulled = engine.pull("hpc/solver", "v1", registry)
    with pytest.raises(EngineError, match="root"):
        engine.run(pulled, user)
    with pytest.raises(EngineError, match="requires root"):
        engine.enable_hooks(by=user)
    engine.enable_hooks(by=node.kernel.init)
    result = engine.run(pulled, user)
    assert result.container.state is ContainerState.RUNNING


def test_hpc_engines_map_single_invoking_uid(node, registry, user):
    """§3.2: files created in the container carry the job user's uid."""
    engine = SarusEngine(node)
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user)
    proc = result.container.proc
    assert proc.host_uid() == 1000
    assert not proc.userns.maps_multiple_uids()


def test_oci_compat_gaps_reported(node, registry, user):
    """§4.1.3: vanilla service containers break on HPC engines."""
    from repro.oci import Builder

    builder = Builder()
    service = builder.build_dockerfile("FROM ubuntu\nEXPOSE 443\nRUN touch /srv/app")
    sarus = SarusEngine(node)
    gaps = sarus.oci_compat_gaps(service)
    assert any("network" in g for g in gaps)
    docker = make_engine(DockerEngine, node)
    assert docker.oci_compat_gaps(service) == []


def test_engine_metadata_complete():
    for cls in ALL_ENGINES:
        info = cls.info
        assert info.name and info.version and info.implementation_language
        assert info.contributors > 0
        caps = cls.capabilities
        assert caps.rootless
        assert caps.oci_container in ("yes", "partial")
