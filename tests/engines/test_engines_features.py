"""Engine feature tests: GPU/MPI hookup with ABI checks, signing,
encryption, fakeroot, SIF handling — Tables 2 and 3 behaviour."""

import pytest

from repro.cluster import GPUDevice, HostNode
from repro.engines import (
    ApptainerEngine,
    CharliecloudEngine,
    DockerEngine,
    EngineError,
    EnrootEngine,
    PodmanEngine,
    PodmanHPCEngine,
    SarusEngine,
    ShifterEngine,
    SingularityCEEngine,
)
from repro.engines.fakeroot import (
    FakerootError,
    LDPreloadFakeroot,
    PtraceFakeroot,
    SubuidFakeroot,
)
from repro.engines.hookup import ABIError, check_driver_abi, check_mpi_abi, make_gpu_hook
from repro.kernel import KernelConfig
from repro.oci import Builder
from repro.oci.runtime import ContainerState
from repro.signing import GPGKeyring, KeyPair


DEF_FILE = "Bootstrap: docker\nFrom: ubuntu:22.04\n%post\n    write /opt/t 1000"


# -- ABI checks ----------------------------------------------------------------

def test_driver_abi_check():
    check_driver_abi("535.104", "535.54")  # same major: fine
    check_driver_abi("535.104", None)      # undeclared: allowed (risky)
    with pytest.raises(ABIError, match="ABI mismatch"):
        check_driver_abi("535.104", "470.999")


def test_mpi_abi_families():
    check_mpi_abi("cray-mpich", "mpich")
    check_mpi_abi("cray-mpich", None)
    with pytest.raises(ABIError):
        check_mpi_abi("cray-mpich", "openmpi")


# -- GPU enablement -----------------------------------------------------------------

def gpu_image(builder, driver="535.104"):
    return builder.build_dockerfile(
        f"FROM ubuntu:22.04\nENV REPRO_CUDA_DRIVER={driver}\nRUN write /opt/gpu-app 1000"
    )


def test_sarus_gpu_hook_with_strict_abi(node, user):
    builder = Builder()
    sarus = SarusEngine(node)
    sarus.enable_gpu()
    node.kernel.grant_device(user, "nvidia0")
    result = sarus.run(gpu_image(builder), user)
    ctr = result.container
    assert "nvidia0" in ctr.proc.exposed_devices
    assert ctr.exists("/usr/lib64/libcuda.so.535.104")


def test_sarus_gpu_hook_rejects_abi_mismatch(node, user):
    builder = Builder()
    sarus = SarusEngine(node)
    sarus.enable_gpu()
    node.kernel.grant_device(user, "nvidia0")
    from repro.oci.hooks import HookError

    with pytest.raises(HookError, match="ABI mismatch"):
        sarus.run(gpu_image(builder, driver="470.1"), user)


def test_gpu_hook_on_gpuless_node(registry, user):
    bare = HostNode(name="cpu-only")
    sarus = SarusEngine(bare)
    with pytest.raises(EngineError, match="no GPUs"):
        sarus.enable_gpu()


def test_enroot_nvidia_only():
    amd_node = HostNode(gpus=[GPUDevice(vendor="amd", model="mi250", index=0)])
    enroot = EnrootEngine(amd_node)
    with pytest.raises(EngineError, match="NVIDIA-only"):
        enroot.enable_gpu()
    nv_node = HostNode(gpus=[GPUDevice(vendor="nvidia", model="a100", index=0)])
    EnrootEngine(nv_node).enable_gpu()


def test_singularity_builtin_nv(node, user):
    apptainer = ApptainerEngine(node)
    apptainer.enable_gpu()
    node.kernel.grant_device(user, "nvidia0")
    sif = apptainer.build(DEF_FILE)
    result = apptainer.run(sif, user)
    assert "nvidia0" in result.container.proc.exposed_devices
    assert result.container.exists("/.singularity.d/libs/libcuda.so.535.104")


def test_charliecloud_manual_gpu(node, registry, user):
    ch = CharliecloudEngine(node)
    ch.manual_bind("/usr/lib64", "/usr/lib64")
    pulled = ch.pull("hpc/solver", "v1", registry)
    result = ch.run(pulled, user)
    assert result.container.exists("/usr/lib64/libcuda.so.535.104")
    with pytest.raises(EngineError, match="no such host path"):
        ch.manual_bind("/nonexistent", "/x")


# -- MPI hookup -------------------------------------------------------------------------

def test_shifter_mpich_only(node, registry, user):
    builder = Builder()
    shifter = ShifterEngine(node)
    shifter.enable_mpi()
    mpich_img = builder.build_dockerfile(
        "FROM ubuntu:22.04\nENV REPRO_MPI_FLAVOR=mpich\nRUN write /app 100"
    )
    result = shifter.run(mpich_img, user)
    assert result.container.exists("/opt/udiImage/mpi/libmpi.so.40")
    openmpi_img = builder.build_dockerfile(
        "FROM ubuntu:22.04\nENV REPRO_MPI_FLAVOR=openmpi\nRUN write /app 100"
    )
    with pytest.raises(ABIError, match="MPICH"):
        shifter.run(openmpi_img, user)


def test_podman_hpc_mpi_hookup(node, registry, user):
    engine = PodmanHPCEngine(node)
    engine.enable_mpi()
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user)
    assert result.container.exists("/opt/mpi-host/libmpi.so.40")


# -- signing ------------------------------------------------------------------------------

def test_docker_content_trust(node, registry, user):
    from repro.signing import NotaryService

    notary = NotaryService()
    docker = DockerEngine(node, content_trust=notary)
    docker.start_daemon()
    pulled = docker.pull("hpc/solver", "v1", registry)
    with pytest.raises(EngineError, match="content trust"):
        docker.run(pulled, user)
    key = notary.init_repository("hpc/solver", owner="hpc")
    notary.sign_target("hpc/solver", "v1", pulled.image.digest, key)
    assert docker.run(pulled, user).container.state is ContainerState.RUNNING


def test_podman_gpg_verification(node, registry):
    ring = GPGKeyring()
    key = ring.generate_key("publisher")
    podman = PodmanEngine(node, keyring=ring)
    pulled = podman.pull("hpc/solver", "v1", registry)
    sig = key.sign(pulled.image.digest.encode())
    assert podman.verify_image(pulled.image, sig) == "publisher"


def test_singularity_sif_signing_and_policy(node, user):
    apptainer = ApptainerEngine(node)
    sif = apptainer.build(DEF_FILE)
    key = KeyPair("maintainer")
    apptainer.sign(sif, key)
    assert apptainer.verify(sif, key)
    apptainer.verify_policy_keyring = GPGKeyring()
    result = apptainer.run(sif, user)  # signed: fine
    assert result.container.state is ContainerState.RUNNING
    unsigned = apptainer.build(DEF_FILE + " && touch /v2")
    with pytest.raises(EngineError, match="unsigned"):
        apptainer.run(unsigned, user)


def test_singularity_oci_imports_not_verified(node, registry, user):
    """§4.1.5: signatures for imported OCI containers are not verified."""
    apptainer = ApptainerEngine(node)
    apptainer.verify_policy_keyring = GPGKeyring()
    pulled = apptainer.pull("hpc/solver", "v1", registry)
    result = apptainer.run(pulled, user)
    assert any("no SIF signature" in w for w in result.warnings)


# -- encryption ----------------------------------------------------------------------------

def test_singularity_encryption_requires_suid(node, user):
    apptainer = ApptainerEngine(node)
    sif = apptainer.build(DEF_FILE)
    key = KeyPair("site")
    sif.encrypt(key)
    with pytest.raises(EngineError, match="decryption_key"):
        apptainer.run(sif, user)
    result = apptainer.run(sif, user, decryption_key=key)
    assert result.container.state is ContainerState.RUNNING


def test_singularity_encryption_unavailable_rootless(user):
    hardened = HostNode(kernel_config=KernelConfig.hardened())
    apptainer = ApptainerEngine(hardened)
    sif = apptainer.build(DEF_FILE)
    key = KeyPair("site")
    sif.encrypt(key)
    huser = hardened.kernel.spawn(uid=1000)
    with pytest.raises(EngineError, match="rootless"):
        apptainer.run(sif, huser, decryption_key=key)


def test_podman_runs_and_decrypts_sif(node, user):
    """§4.1.4: Podman can run SIF; Singularity needed only to build."""
    apptainer = ApptainerEngine(node)
    sif = apptainer.build(DEF_FILE)
    key = KeyPair("site")
    sif.encrypt(key)
    podman = PodmanEngine(node)
    result = podman.run(sif, user, decryption_key=key)
    assert result.container.state is ContainerState.RUNNING
    assert result.container.rootfs.driver.name == "squashfuse"


# -- suid compromise & fallback ------------------------------------------------------------------

def test_singularity_suid_mounts_user_sif_with_warning(node, user):
    apptainer = ApptainerEngine(node)
    sif = apptainer.build(DEF_FILE, user=user)
    assert sif.squash.is_user_manipulable(1000)
    result = apptainer.run(sif, user)
    assert any("kernel exposed" in w for w in result.warnings)
    assert result.container.rootfs.driver.name == "bind"  # kernel driver staged


def test_singularity_rootless_fallback_squashfuse(user):
    hardened = HostNode(kernel_config=KernelConfig.hardened())
    apptainer = ApptainerEngine(hardened)
    huser = hardened.kernel.spawn(uid=1000)
    sif = apptainer.build(DEF_FILE, user=huser)
    result = apptainer.run(sif, huser)
    assert result.container.rootfs.driver.name == "squashfuse"


# -- fakeroot ------------------------------------------------------------------------------------

def test_ld_preload_fakeroot_fails_static(node, user):
    fk = LDPreloadFakeroot(node.kernel)
    tree, cost = fk.build(user, "touch /x", baseline_cost=1.0)
    assert tree.exists("/x") and tree.get("/x").uid == 0
    with pytest.raises(FakerootError, match="static"):
        fk.build(user, "touch /x", uses_static_binaries=True)


def test_ptrace_fakeroot_slow_but_works_on_static(node, user):
    pt = PtraceFakeroot(node.kernel)
    tree, cost = pt.build(user, "touch /x", baseline_cost=1.0, uses_static_binaries=True)
    assert tree.exists("/x")
    assert cost > 3.0  # significant penalty (§4.1.2)
    ld_cost = LDPreloadFakeroot(node.kernel).build(user, "touch /x", baseline_cost=1.0)[1]
    assert cost > 2 * ld_cost


def test_subuid_fakeroot_needs_range(node, user):
    fk = SubuidFakeroot(node.kernel)
    with pytest.raises(FakerootError, match="subuid"):
        fk.enter(user)
    fk2 = SubuidFakeroot(node.kernel, {1000: (100000, 65536)})
    proc = fk2.enter(user)
    assert proc.userns.maps_multiple_uids()
    assert proc.userns.uid_to_host(0) == 1000
    assert proc.userns.uid_to_host(1) == 100000


def test_singularity_fakeroot_build(node, user):
    apptainer = ApptainerEngine(node, subuid_ranges={1000: (100000, 65536)})
    sif = apptainer.build(DEF_FILE, user=user, fakeroot=True)
    assert sif.tree.exists("/opt/t")
    no_range = SingularityCEEngine(node)
    with pytest.raises(FakerootError):
        no_range.build(DEF_FILE, user=user, fakeroot=True)
