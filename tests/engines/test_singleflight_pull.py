"""Single-flight pull coalescing: properties and exact-cost semantics.

A pull requested while the same ``repository:tag`` is still in flight
on the node joins the in-flight download: it costs exactly the
remaining time and issues no registry traffic.  Combined with the
layer cache, a node therefore never transfers the same layer digest
twice — whatever the pull schedule, total bytes over the wire equal
the distinct-digest bytes of the images it touched.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import HostNode
from repro.engines import PodmanEngine
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry

REFS = (("hpc/solver", "v1"), ("hpc/py-pipeline", "v1"), ("hpc/solver", "v2"))


def make_registry():
    reg = OCIDistributionRegistry(name="site-registry")
    builder = Builder(BaseImageCatalog())
    solver = builder.build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app/solver 5000000\n"
    )
    reg.push_image("hpc/solver", "v1", solver)
    # v2 shares the ubuntu base layers with v1 — cross-image dedup
    solver2 = builder.build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app/solver 6000000\n"
    )
    reg.push_image("hpc/solver", "v2", solver2)
    py = builder.build_dockerfile("FROM python:3.11\nRUN pip-install scipy 100")
    reg.push_image("hpc/py-pipeline", "v1", py)
    return reg


schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(REFS) - 1),
        st.floats(min_value=0.001, max_value=5.0),  # gap to the next pull
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(schedule_strategy)
def test_transferred_bytes_equal_distinct_digest_bytes(schedule):
    registry = make_registry()
    engine = PodmanEngine(HostNode(name="nid0001"))

    # spy on the wire: bytes a pull would transfer given the node's cache
    transferred = []
    orig = registry.pull_image

    def spy(repository, tag, **kwargs):
        have = set(kwargs.get("have_digests") or ())
        image, cost = orig(repository, tag, **kwargs)
        transferred.append(
            sum(l.compressed_size for l in image.layers if l.digest not in have)
        )
        return image, cost

    registry.pull_image = spy

    now = 0.0
    pulled_layers = {}
    for ref_idx, gap in schedule:
        repo, tag = REFS[ref_idx]
        result = engine.pull(repo, tag, registry, now=now)
        assert result.pull_cost >= 0.0
        for layer in result.image.layers:
            pulled_layers[layer.digest] = layer.compressed_size
        now += gap

    # every distinct digest crossed the wire exactly once
    assert sum(transferred) == sum(pulled_layers.values())
    # coalesced pulls issued no registry request at all
    assert registry.stats["pulls"] == (
        engine.stats["pulls"] - engine.stats["coalesced_pulls"]
    )


def test_overlapping_same_ref_pull_joins_in_flight():
    registry = make_registry()
    engine = PodmanEngine(HostNode(name="nid0001"))

    first = engine.pull("hpc/solver", "v1", registry, now=0.0)
    assert first.pull_cost > 0.0

    # strictly inside the first pull's window: join it
    mid = first.pull_cost / 2
    joined = engine.pull("hpc/solver", "v1", registry, now=mid)
    assert joined.pull_cost == first.pull_cost - mid
    assert joined.image is first.image
    assert engine.stats["coalesced_pulls"] == 1
    assert registry.stats["pulls"] == 1

    # a different ref in the same window is NOT coalesced
    other = engine.pull("hpc/py-pipeline", "v1", registry, now=mid)
    assert other.image is not first.image
    assert engine.stats["coalesced_pulls"] == 1

    # after the window closes, the same ref is a fresh (cheap, layer-
    # cached) pull, not a zero-cost join
    later = engine.pull("hpc/solver", "v1", registry, now=first.pull_cost + 1.0)
    assert later.pull_cost < first.pull_cost
    assert engine.stats["coalesced_pulls"] == 1


def test_same_instant_repull_keeps_layer_cache_semantics():
    """Two pulls at the same ``now`` (the analytic default) never
    coalesce — the second is the classic cheap layer-cache re-pull."""
    registry = make_registry()
    engine = PodmanEngine(HostNode(name="nid0001"))
    first = engine.pull("hpc/solver", "v1", registry)
    second = engine.pull("hpc/solver", "v1", registry)
    assert second.pull_cost < first.pull_cost
    assert engine.stats["coalesced_pulls"] == 0
