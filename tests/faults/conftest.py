import pytest

from repro.faults import injector


@pytest.fixture(autouse=True)
def _disarm_after_test():
    """The injector is process-wide state; never leak an armed plan."""
    yield
    injector.disarm()
