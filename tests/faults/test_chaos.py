"""Chaos runs: determinism, the CLI verb, and the no-leak property."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.chaos import run_chaos
from repro.scenarios import KubeletInAllocationScenario


def crash_plan(seed=42, n_nodes=4):
    nodes = [f"nid{i:04}" for i in range(n_nodes)]
    return FaultPlan.generate(seed=seed, node_names=nodes)


def test_chaos_run_is_deterministic():
    plan = crash_plan()
    m1, r1 = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    m2, r2 = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    assert r1 == r2
    assert m1 == m2


def test_node_crash_requeues_service_job_and_recovers():
    plan = crash_plan(seed=42)
    assert any(e.kind is FaultKind.NODE_CRASH for e in plan)
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    assert report.injected.get("node_crash", 0) >= 1
    assert report.jobs_requeued >= 1
    assert report.clean, report.leaks
    # the requeued allocation restarted its agents and finished the work
    assert report.pods_completed + report.pods_failed == report.pods_submitted


def test_registry_faults_fail_pods_but_leak_nothing():
    plan = FaultPlan([
        FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0, duration=30.0),
    ])
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=7)
    assert report.injected.get("registry_429", 0) >= 1
    assert report.retries.get("registry", 0) >= 1
    assert report.pods_failed >= 1          # pull deadline / retry exhaustion
    assert report.clean, report.leaks


def test_chaos_cli_double_run_traces_byte_identical(tmp_path):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    argv = ["chaos", "kubelet_in_allocation", "--seed", "42"]
    assert main([*argv, "--trace", str(out_a)]) == 0
    assert main([*argv, "--trace", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    doc = json.loads(out_a.read_text())
    assert any(
        ev.get("name") == "fault.injected" for ev in doc.get("traceEvents", [])
    )


def test_chaos_cli_plan_roundtrip(tmp_path):
    plan_path = tmp_path / "plan.json"
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert main([
        "chaos", "kubelet-in-allocation", "--seed", "9",
        "--trace", str(out_a), "--save-plan", str(plan_path),
    ]) == 0
    assert main([
        "chaos", "kubelet-in-allocation", "--seed", "9",
        "--trace", str(out_b), "--faults", str(plan_path),
    ]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()


def test_chaos_cli_rejects_unknown_scenario(tmp_path):
    assert main(["chaos", "no-such-scenario", "--trace", str(tmp_path / "x.json")]) == 2


# -- the §3.2 property: no lingering containers or mounts, any plan ----------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_no_leaks_under_any_seeded_plan(seed):
    plan = crash_plan(seed=seed)
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=seed, n_pods=4)
    assert report.clean, report.leaks
    assert report.pods_completed + report.pods_failed <= report.pods_submitted


# -- SLO sampling, detection latency, and run_slo -----------------------------


@pytest.fixture
def _sampling_on():
    from repro.obs import metrics as _metrics
    from repro.obs import timeseries as _timeseries

    _metrics.enable()
    _timeseries.enable(interval=5.0)
    yield
    _metrics.disable()
    _metrics.reset()
    _timeseries.disable()
    _timeseries.reset()


def test_chaos_without_recorder_reports_no_detection():
    _, report = run_chaos(KubeletInAllocationScenario, crash_plan(), seed=42)
    assert report.alerts_fired == 0
    assert report.detection == {}
    assert report.evaluation is None


def test_chaos_with_recorder_scores_node_crash_detection(_sampling_on):
    _, report = run_chaos(KubeletInAllocationScenario, crash_plan(), seed=42)
    assert report.alerts_fired >= 1
    latency = report.detection.get("node_crash")
    # symptom series are sampled on a 5s grid, so the crash is noticed
    # within one tick of injection
    assert latency is not None and 0.0 <= latency <= 5.0
    assert report.evaluation is not None
    assert report.evaluation.fires == report.alerts_fired


def test_chaos_report_document_rolls_up_detection(_sampling_on):
    from repro.faults.chaos import chaos_report_document

    _, report = run_chaos(KubeletInAllocationScenario, crash_plan(), seed=42)
    doc = chaos_report_document([report], report.scenario)
    assert doc["schema"] == "repro-chaos-report/2"
    agg = doc["aggregate"]["detection"]["node_crash"]
    assert agg == {
        "detected": 1,
        "of": 1,
        "mean_latency": report.detection["node_crash"],
    }
    assert doc["reports"][0]["alerts_fired"] == report.alerts_fired


def test_run_slo_is_deterministic_and_scores_the_run():
    from repro.faults.chaos import run_slo
    from repro.obs import metrics as _metrics
    from repro.obs import timeseries as _timeseries

    plan = crash_plan()
    try:
        _metrics.enable()
        _, r1, s1 = run_slo(KubeletInAllocationScenario, plan, seed=42)
        scorecard_1 = s1.to_json()
        series_1 = _timeseries.recorder.to_json()
        _metrics.disable()
        _metrics.enable()  # reset between runs, like a second CLI invocation
        _, r2, s2 = run_slo(KubeletInAllocationScenario, plan, seed=42)
        assert s2.to_json() == scorecard_1
        assert _timeseries.recorder.to_json() == series_1
        assert r1.to_dict() == r2.to_dict()
        assert s1.detection == r1.detection
        assert any(row["fires"] for row in s1.to_dict()["rules"])
    finally:
        _metrics.disable()
        _metrics.reset()
        _timeseries.disable()
        _timeseries.reset()


def test_alert_instants_land_in_the_trace(tmp_path, _sampling_on):
    from repro.obs import trace as _trace

    _trace.enable()
    try:
        _, report = run_chaos(KubeletInAllocationScenario, crash_plan(), seed=42)
        doc = json.loads(_trace.export_json(str(tmp_path / "t.json")))
    finally:
        _trace.disable()
        _trace.reset()
    alerts = [e for e in doc["traceEvents"] if e.get("name") == "slo.alert"]
    # every fire edge (and any resolve edges) lands as an instant
    assert len(alerts) >= report.alerts_fired >= 1
    assert all(e["ph"] == "i" for e in alerts)
