"""Chaos runs: determinism, the CLI verb, and the no-leak property."""

import json

from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.chaos import run_chaos
from repro.scenarios import KubeletInAllocationScenario


def crash_plan(seed=42, n_nodes=4):
    nodes = [f"nid{i:04}" for i in range(n_nodes)]
    return FaultPlan.generate(seed=seed, node_names=nodes)


def test_chaos_run_is_deterministic():
    plan = crash_plan()
    m1, r1 = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    m2, r2 = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    assert r1 == r2
    assert m1 == m2


def test_node_crash_requeues_service_job_and_recovers():
    plan = crash_plan(seed=42)
    assert any(e.kind is FaultKind.NODE_CRASH for e in plan)
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=42)
    assert report.injected.get("node_crash", 0) >= 1
    assert report.jobs_requeued >= 1
    assert report.clean, report.leaks
    # the requeued allocation restarted its agents and finished the work
    assert report.pods_completed + report.pods_failed == report.pods_submitted


def test_registry_faults_fail_pods_but_leak_nothing():
    plan = FaultPlan([
        FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0, duration=30.0),
    ])
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=7)
    assert report.injected.get("registry_429", 0) >= 1
    assert report.retries.get("registry", 0) >= 1
    assert report.pods_failed >= 1          # pull deadline / retry exhaustion
    assert report.clean, report.leaks


def test_chaos_cli_double_run_traces_byte_identical(tmp_path):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    argv = ["chaos", "kubelet_in_allocation", "--seed", "42"]
    assert main([*argv, "--trace", str(out_a)]) == 0
    assert main([*argv, "--trace", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    doc = json.loads(out_a.read_text())
    assert any(
        ev.get("name") == "fault.injected" for ev in doc.get("traceEvents", [])
    )


def test_chaos_cli_plan_roundtrip(tmp_path):
    plan_path = tmp_path / "plan.json"
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert main([
        "chaos", "kubelet-in-allocation", "--seed", "9",
        "--trace", str(out_a), "--save-plan", str(plan_path),
    ]) == 0
    assert main([
        "chaos", "kubelet-in-allocation", "--seed", "9",
        "--trace", str(out_b), "--faults", str(plan_path),
    ]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()


def test_chaos_cli_rejects_unknown_scenario(tmp_path):
    assert main(["chaos", "no-such-scenario", "--trace", str(tmp_path / "x.json")]) == 2


# -- the §3.2 property: no lingering containers or mounts, any plan ----------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_no_leaks_under_any_seeded_plan(seed):
    plan = crash_plan(seed=seed)
    _, report = run_chaos(KubeletInAllocationScenario, plan, seed=seed, n_pods=4)
    assert report.clean, report.leaks
    assert report.pods_completed + report.pods_failed <= report.pods_submitted
