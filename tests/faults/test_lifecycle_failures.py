"""Cross-cutting lifecycle failures (no injector needed): half-built
containers, full blob stores, failing hooks mid-lifecycle, WLM timeouts
during scenarios.  Injected-fault recovery lives in test_recovery.py."""

import pytest

from repro.cluster import HostNode
from repro.engines import SarusEngine
from repro.fs import FileTree, PROFILES
from repro.fs.drivers import mount_overlay
from repro.kernel import Kernel, KernelConfig
from repro.oci import (
    Builder,
    Bundle,
    CrunRuntime,
    HookPoint,
    HookRegistry,
    ImageConfig,
    Layer,
    NamespaceRequest,
    OCIImage,
    RuntimeSpec,
)
from repro.oci.hooks import HookError
from repro.registry import OCIDistributionRegistry
from repro.registry.storage import FSBlobStore, StorageError


def make_bundle(hooks=None):
    tree = FileTree()
    tree.create_file("/bin/app", size=100)
    rootfs = mount_overlay([tree], PROFILES["nvme"], writable=True)
    spec = RuntimeSpec(args=("/bin/app",), namespaces=NamespaceRequest.hpc_minimal())
    if hooks is not None:
        spec.hooks = hooks
    return Bundle(rootfs=rootfs, spec=spec)


def test_failed_create_leaves_no_container_record():
    kernel = Kernel(KernelConfig.modern_hpc())
    rt = CrunRuntime(kernel)
    hooks = HookRegistry()
    hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: (_ for _ in ()).throw(ValueError("gpu driver missing")),
              name="bad-hook")
    with pytest.raises(HookError):
        rt.create(make_bundle(hooks), owner=kernel.spawn(uid=1000), container_id="doomed")
    assert "doomed" not in rt.containers
    # the id is reusable after the failure
    ctr = rt.create(make_bundle(), owner=kernel.spawn(uid=1000), container_id="doomed")
    assert ctr.id == "doomed"


def test_blob_store_capacity_failure_is_clean():
    store = FSBlobStore(capacity_bytes=1_000)
    reg = OCIDistributionRegistry(name="tiny", store=store)
    t = FileTree()
    t.create_file("/big", size=10_000)
    big = OCIImage(ImageConfig(), [Layer(t)])
    with pytest.raises(StorageError, match="full"):
        reg.push_image("r/big", "v1", big)
    # the registry did not record a tag for the failed push
    from repro.registry import RegistryError

    with pytest.raises(RegistryError):
        reg.resolve("r/big", "v1")
    # small pushes still work afterwards
    t2 = FileTree()
    t2.create_file("/small", size=10)
    reg.push_image("r/small", "v1", OCIImage(ImageConfig(), [Layer(t2)]))


def test_poststart_hook_failure_after_running():
    """Per OCI spec poststart failures are logged, not fatal — our model
    surfaces them as HookError at start(); the container must be
    killable afterwards (no stuck state machine)."""
    kernel = Kernel(KernelConfig.modern_hpc())
    rt = CrunRuntime(kernel)
    hooks = HookRegistry()
    hooks.add(HookPoint.POSTSTART, lambda ctx: (_ for _ in ()).throw(RuntimeError("monitor died")),
              name="flaky-poststart")
    ctr = rt.create(make_bundle(hooks), owner=kernel.spawn(uid=1000))
    with pytest.raises(HookError):
        rt.start(ctr)
    # the container did transition to RUNNING before poststart ran
    from repro.oci.runtime import ContainerState

    assert ctr.state is ContainerState.RUNNING
    rt.kill(ctr)
    assert ctr.state is ContainerState.STOPPED


def test_engine_survives_registry_failure_midway():
    node = HostNode(kernel_config=KernelConfig.modern_hpc())
    engine = SarusEngine(node)
    registry = OCIDistributionRegistry(name="site")
    with pytest.raises(Exception):
        engine.pull("ghost/app", "v1", registry)
    # engine state is intact: a valid pull+run still works
    image = Builder().build_dockerfile("FROM alpine\nRUN write /opt/x 1000")
    registry.push_image("ok/app", "v1", image)
    pulled = engine.pull("ok/app", "v1", registry)
    result = engine.run(pulled, node.kernel.spawn(uid=1000))
    assert result.container.state.value == "running"


def test_scenario_job_timeout_fails_safe():
    """A kubelet-hosting job that hits its time limit: the WLM reclaims
    the nodes; metrics still computable."""
    from repro.scenarios import KubeletInAllocationScenario
    from repro.sim import Environment
    from repro.wlm import JobState

    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=2, allocation_time_limit=60)
    ready = scenario.provision()
    env.run(until=ready)
    env.run(until=env.now + 500)
    assert scenario.job.state is JobState.TIMEOUT
    from repro.wlm import NodeState

    assert all(n.state is NodeState.IDLE for n in scenario.wlm.nodes)
    metrics = scenario.metrics()  # must not raise
    assert metrics.pods_submitted == 0
