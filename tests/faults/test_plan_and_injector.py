"""Unit tests for fault plans, the injector, and retry policies."""

import pytest

from repro.faults import (
    KIND_POINTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RetryExhausted,
    RetryPolicy,
    injector,
)
from repro.sim import Environment


# -- plans --------------------------------------------------------------------------

def test_every_kind_has_an_injection_point():
    assert set(KIND_POINTS) == set(FaultKind)


def test_event_window_is_half_open():
    ev = FaultEvent(kind=FaultKind.REGISTRY_429, at=10.0, duration=5.0)
    assert not ev.active_at(9.999)
    assert ev.active_at(10.0)
    assert ev.active_at(14.999)
    assert not ev.active_at(15.0)


def test_instantaneous_event_active_only_at_its_instant():
    ev = FaultEvent(kind=FaultKind.HOOK_FAILURE, at=3.0)
    assert ev.active_at(3.0)
    assert not ev.active_at(3.0001)


def test_target_matching():
    ev = FaultEvent(kind=FaultKind.NODE_CRASH, at=0.0, target="nid0001")
    assert ev.matches("nid0001")
    assert ev.matches(None)          # caller without a target sees everything
    assert not ev.matches("nid0002")
    blanket = FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0)
    assert blanket.matches("anything")


def test_plan_events_sorted_and_queryable():
    plan = FaultPlan([
        FaultEvent(kind=FaultKind.MDS_OUTAGE, at=50.0, duration=1.0),
        FaultEvent(kind=FaultKind.REGISTRY_429, at=10.0, duration=1.0),
        FaultEvent(kind=FaultKind.NODE_CRASH, at=30.0, duration=1.0, target="n1"),
    ])
    assert [e.at for e in plan] == [10.0, 30.0, 50.0]
    assert [e.kind for e in plan.for_point("registry.pull")] == [FaultKind.REGISTRY_429]
    assert [e.kind for e in plan.push_events()] == [FaultKind.NODE_CRASH]


def test_plan_json_roundtrip(tmp_path):
    plan = FaultPlan(
        [
            FaultEvent(kind=FaultKind.NODE_CRASH, at=12.5, duration=30.0, target="nid0002"),
            FaultEvent(kind=FaultKind.MDS_DEGRADED, at=5.0, duration=20.0, factor=7.5),
        ],
        seed=99,
    )
    path = tmp_path / "plan.json"
    plan.to_file(str(path))
    back = FaultPlan.from_file(str(path))
    assert back.seed == 99
    assert back.events == plan.events


def test_plan_from_bare_event_list():
    plan = FaultPlan.from_json('[{"kind": "registry_429", "at": 1.0, "duration": 2.0}]')
    assert len(plan) == 1
    assert plan.events[0].kind is FaultKind.REGISTRY_429


def test_generate_is_deterministic_and_seed_sensitive():
    nodes = ["nid0000", "nid0001"]
    a = FaultPlan.generate(seed=7, node_names=nodes)
    b = FaultPlan.generate(seed=7, node_names=nodes)
    c = FaultPlan.generate(seed=8, node_names=nodes)
    assert a.events == b.events
    assert a.events != c.events
    kinds = {e.kind for e in a}
    assert FaultKind.NODE_CRASH in kinds
    crash = next(e for e in a if e.kind is FaultKind.NODE_CRASH)
    assert crash.target in nodes


def test_generate_without_nodes_skips_crashes():
    plan = FaultPlan.generate(seed=1)
    assert all(e.kind is not FaultKind.NODE_CRASH for e in plan)


# -- injector -----------------------------------------------------------------------

def test_disabled_injector_is_inert():
    assert not injector.enabled
    assert injector.active("registry.pull", at=0.0) is None
    injector.note_retry("registry")
    assert injector.retry_counts == {}
    injector.register("wlm.node", lambda e, p: None)  # no-op while disarmed
    assert injector._handlers == {}


def test_armed_injector_serves_windows_and_counts():
    env = Environment()
    plan = FaultPlan([FaultEvent(kind=FaultKind.REGISTRY_429, at=10.0, duration=5.0)])
    injector.arm(plan, env)
    assert injector.active("registry.pull", at=5.0) is None
    hit = injector.active("registry.pull", at=12.0)
    assert hit is not None and hit.kind is FaultKind.REGISTRY_429
    assert injector.active("fs.mds", at=12.0) is None
    injector.note_retry("registry")
    assert injector.injected_counts == {"registry_429": 1}
    assert injector.retry_counts == {"registry": 1}
    injector.disarm()
    assert injector.active("registry.pull", at=12.0) is None


def test_push_driver_delivers_crash_and_restore_edges():
    env = Environment()
    plan = FaultPlan(
        [FaultEvent(kind=FaultKind.NODE_CRASH, at=20.0, duration=30.0, target="n1")]
    )
    injector.arm(plan, env)
    seen: list[tuple[float, str, str]] = []
    injector.register(
        "wlm.node", lambda event, phase: seen.append((env.now, phase, event.target))
    )
    env.run(until=100.0)
    assert seen == [(20.0, "crash", "n1"), (50.0, "restore", "n1")]
    assert injector.injected_counts == {"node_crash": 1}


def test_arm_resets_counts():
    env = Environment()
    plan = FaultPlan([FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0, duration=1.0)])
    injector.arm(plan, env)
    injector.active("registry.pull", at=0.5)
    injector.arm(plan, Environment())
    assert injector.injected_counts == {}


# -- retry policies -----------------------------------------------------------------

def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=3.0, max_delay=10.0)
    assert [policy.delay(i) for i in range(5)] == [1.0, 3.0, 9.0, 10.0, 10.0]
    assert list(policy.delays()) == [1.0, 3.0, 9.0, 10.0, 10.0]


def test_gives_up_on_attempts_or_deadline():
    policy = RetryPolicy(max_attempts=3, deadline=100.0)
    assert not policy.gives_up(2, 50.0)
    assert policy.gives_up(3, 0.0)
    assert policy.gives_up(1, 100.0)
    no_deadline = RetryPolicy(max_attempts=3)
    assert not no_deadline.gives_up(2, 1e9)


def test_retry_exhausted_aggregates_cause():
    cause = ValueError("boom")
    exc = RetryExhausted("registry", attempts=4, elapsed=37.5, last_cause=cause)
    msg = str(exc)
    assert "4 attempts" in msg and "37.50s" in msg and "ValueError: boom" in msg
    assert exc.last_cause is cause


def test_retry_policy_is_jitter_free():
    policy = RetryPolicy()
    assert list(policy.delays()) == list(policy.delays())
