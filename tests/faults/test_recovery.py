"""Recovery policies under injected faults: registry backoff, error
aggregation, Slurm requeue on node failure, MDS degradation, FUSE death,
and hook failures."""

import pytest

from repro.cluster import HostNode
from repro.engines import PodmanEngine
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RetryExhausted,
    injector,
)
from repro.fs import FileTree
from repro.fs.backends import SharedFS
from repro.fs.tree import FsError
from repro.kernel import KernelConfig
from repro.oci import Builder, HookPoint, HookRegistry
from repro.oci.hooks import HookError
from repro.registry import (
    FSBlobStore,
    OCIDistributionRegistry,
    PullThroughProxy,
    RegistryRateLimited,
    StorageError,
)
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, NodeState, SlurmController


def make_registry(name="site"):
    registry = OCIDistributionRegistry(name=name)
    image = Builder().build_dockerfile("FROM alpine\nRUN write /opt/x 100000")
    registry.push_image("ok/app", "v1", image)
    return registry


def arm(events):
    injector.arm(FaultPlan(events), Environment())


# -- registry backoff ---------------------------------------------------------------

def test_pull_retries_escape_a_transient_429_window():
    registry = make_registry()
    engine = PodmanEngine(HostNode())
    arm([FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0, duration=2.0)])
    pulled = engine.pull("ok/app", "v1", registry, now=0.0)
    # the backoff accounted itself into pull_cost: strictly more than a
    # fault-free pull, and the retries were recorded for the report
    assert pulled.pull_cost > 2.0
    assert injector.retry_counts["registry"] >= 1
    assert injector.injected_counts["registry_429"] >= 1


def test_pull_exhaustion_surfaces_one_aggregated_error():
    registry = make_registry()
    engine = PodmanEngine(HostNode())
    arm([FaultEvent(kind=FaultKind.REGISTRY_429, at=0.0, duration=10_000.0)])
    with pytest.raises(RetryExhausted) as excinfo:
        engine.pull("ok/app", "v1", registry, now=0.0)
    exc = excinfo.value
    assert exc.subsystem == "registry"
    assert exc.attempts == engine.pull_retry.max_attempts
    assert isinstance(exc.last_cause, RegistryRateLimited)
    assert exc.__cause__ is exc.last_cause
    assert "giving up after 5 attempts" in str(exc)


def test_timeout_faults_account_client_timeout_per_attempt():
    registry = make_registry()
    engine = PodmanEngine(HostNode())
    arm([FaultEvent(kind=FaultKind.REGISTRY_TIMEOUT, at=0.0, duration=10_000.0)])
    with pytest.raises(RetryExhausted) as excinfo:
        engine.pull("ok/app", "v1", registry, now=0.0)
    # every attempt hung for the transport's client timeout
    n = engine.pull_retry.max_attempts
    assert excinfo.value.elapsed >= n * registry.transport.client_timeout


def test_slow_blob_fault_inflates_pull_cost_without_erroring():
    registry = make_registry()
    engine = PodmanEngine(HostNode())
    baseline = engine.pull("ok/app", "v1", registry, now=0.0).pull_cost
    engine2 = PodmanEngine(HostNode())
    arm([
        FaultEvent(
            kind=FaultKind.REGISTRY_SLOW_BLOB, at=0.0, duration=10_000.0, factor=5.0
        )
    ])
    slowed = engine2.pull("ok/app", "v1", registry, now=0.0).pull_cost
    assert slowed > baseline


def test_full_blob_store_mid_pull_aggregates_not_bare_storage_error():
    """Satellite regression: a StorageError from a full pull-through cache
    during a retried pull must surface as RetryExhausted (attempt count +
    last cause), never as the bare final StorageError."""
    upstream = make_registry(name="upstream")
    proxy = PullThroughProxy(upstream, name="edge")
    proxy.cache = OCIDistributionRegistry(
        name="edge-store", store=FSBlobStore(capacity_bytes=1_000)
    )
    engine = PodmanEngine(HostNode())
    with pytest.raises(RetryExhausted) as excinfo:
        engine.pull("ok/app", "v1", proxy, now=0.0)
    exc = excinfo.value
    assert exc.attempts == engine.pull_retry.max_attempts
    assert isinstance(exc.last_cause, StorageError)
    assert isinstance(exc.__cause__, StorageError)


# -- WLM node failure ---------------------------------------------------------------

def make_wlm(env, n=2):
    hosts = [HostNode(name=f"nid{i:04}", kernel_config=KernelConfig.modern_hpc())
             for i in range(n)]
    return SlurmController(env, hosts)


def test_node_crash_requeues_job_and_keeps_node_down():
    env = Environment()
    wlm = make_wlm(env)
    job = wlm.submit(JobSpec(name="work", user_uid=1000, nodes=1, duration=100.0))
    env.run(until=10.0)
    assert job.state is JobState.RUNNING
    victim_name = job.allocated_nodes[0]
    wlm.fail_node(victim_name, reason="kernel panic")
    env.run(until=11.0)
    victim = next(n for n in wlm.nodes if n.name == victim_name)
    assert victim.state is NodeState.DOWN          # release() must not resurrect
    assert job.requeue_count == 1
    assert any(s is JobState.NODE_FAIL for _, s in job.state_log)
    env.run(until=400.0)
    assert job.state is JobState.COMPLETED         # re-ran on the surviving node
    assert job.allocated_nodes[0] != victim_name
    assert victim.state is NodeState.DOWN
    wlm.restore_node(victim_name)
    assert victim.state is NodeState.IDLE


def test_node_crash_without_requeue_is_terminal():
    env = Environment()
    wlm = make_wlm(env)
    job = wlm.submit(
        JobSpec(name="fragile", user_uid=1000, nodes=1, duration=100.0, requeue=False)
    )
    env.run(until=10.0)
    wlm.fail_node(job.allocated_nodes[0])
    env.run(until=400.0)
    assert job.state is JobState.NODE_FAIL
    assert job.state.is_terminal
    assert job.requeue_count == 0


def test_injected_node_crash_drives_fail_and_restore():
    """End to end through the push driver: the controller registers for
    "wlm.node" at construction, the driver crashes the node mid-job and
    restores it when the window closes."""
    env = Environment()
    plan = FaultPlan([
        FaultEvent(kind=FaultKind.NODE_CRASH, at=20.0, duration=30.0, target="nid0000"),
    ])
    injector.arm(plan, env)
    wlm = make_wlm(env, n=1)          # single node: requeued job must wait
    job = wlm.submit(JobSpec(name="work", user_uid=1000, nodes=1, duration=40.0))
    env.run(until=30.0)
    node = wlm.nodes[0]
    assert node.state is NodeState.DOWN
    assert job.state is JobState.PENDING
    env.run(until=200.0)
    assert node.state is not NodeState.DOWN       # restored at t=50
    assert job.state is JobState.COMPLETED
    assert job.requeue_count == 1


# -- shared-FS MDS faults -----------------------------------------------------------

def make_sharedfs(env):
    fs = SharedFS(env=env)
    fs.tree.create_file("/data/a/x", size=1000)
    return fs


def run_proc_open(env, fs):
    done = {}

    def proc():
        yield from fs.proc_open("/data/a/x")
        done["at"] = env.now

    env.process(proc())
    env.run(until=10_000.0)
    return done["at"]


def test_mds_outage_stalls_gracefully_until_recovery():
    env = Environment()
    fs = make_sharedfs(env)
    injector.arm(
        FaultPlan([FaultEvent(kind=FaultKind.MDS_OUTAGE, at=0.0, duration=50.0)]), env
    )
    finished = run_proc_open(env, fs)
    # no error; the open simply rode out the outage window
    assert finished >= 50.0
    assert injector.injected_counts["mds_outage"] >= 1


def test_mds_degradation_multiplies_metadata_cost():
    baseline_env = Environment()
    baseline = run_proc_open(baseline_env, make_sharedfs(baseline_env))
    env = Environment()
    fs = make_sharedfs(env)
    injector.arm(
        FaultPlan([
            FaultEvent(kind=FaultKind.MDS_DEGRADED, at=0.0, duration=10.0, factor=9.0)
        ]),
        env,
    )
    degraded = run_proc_open(env, fs)
    assert degraded == pytest.approx(baseline * 9.0)


# -- FUSE death ---------------------------------------------------------------------

def test_fuse_death_fails_userspace_mounts_only():
    from repro.fs import PROFILES
    from repro.fs.drivers import mount_overlay

    arm([FaultEvent(kind=FaultKind.FUSE_DEATH, at=0.0, duration=100.0)])
    tree = FileTree()
    tree.create_file("/bin/app", size=10)
    with pytest.raises(FsError, match="FUSE daemon died"):
        mount_overlay([tree], PROFILES["nvme"], fuse=True)
    # the kernel driver is unaffected by a dead FUSE daemon
    view = mount_overlay([tree], PROFILES["nvme"], fuse=False)
    assert view is not None


# -- hook failures ------------------------------------------------------------------

def test_hook_failure_window_aborts_lifecycle_but_spares_poststop():
    arm([FaultEvent(kind=FaultKind.HOOK_FAILURE, at=0.0, duration=100.0)])
    hooks = HookRegistry()
    hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: None, name="site-gpu")
    hooks.add(HookPoint.POSTSTOP, lambda ctx: None, name="site-cleanup")
    with pytest.raises(HookError, match="injected fault"):
        hooks.run(HookPoint.CREATE_CONTAINER, {})
    # cleanup hooks must stay runnable or teardown could never finish
    hooks.run(HookPoint.POSTSTOP, {})
    assert (HookPoint.POSTSTOP, "site-cleanup") in hooks.executed
