"""Copy-on-write aliasing semantics of FileTree.

clone() freezes the tree and aliases it; every mutating operation must
copy up the touched spine so that no change ever leaks between a tree
and its clones (in either direction), while reads — walk(), files(),
aggregates — observe shared subtrees transparently.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import FileTree, FsError
from repro.fs.inode import DirNode, FileNode, SymlinkNode, WhiteoutNode
from repro.sim import profile


def snapshot(tree):
    """Walk listing with enough node state to detect any leak."""
    out = []
    for path, node in tree.walk():
        entry = (path, node.kind, node.uid, node.gid, node.mode)
        if isinstance(node, FileNode):
            entry += (node.size, node.data)
        elif isinstance(node, SymlinkNode):
            entry += (node.target,)
        out.append(entry)
    return out


def app_tree():
    t = FileTree()
    t.create_file("/app/bin/tool", size=4_000, mode=0o755)
    t.create_file("/app/etc/conf", data=b"key=1")
    t.create_file("/app/lib/libm.so", size=9_000)
    t.symlink("/app/latest", "/app/bin/tool")
    return t


# -- clone-then-mutate isolation, both directions ---------------------------

def test_mutating_clone_does_not_leak_into_original():
    t = app_tree()
    before = snapshot(t)
    c = t.clone()
    c.create_file("/app/etc/extra", data=b"new")
    c.write("/app/etc/conf", b"key=2")
    c.chmod("/app/bin/tool", 0o700)
    c.chown("/app/lib/libm.so", 7, 7)
    c.remove("/app/latest")
    c.mkdir("/scratch", parents=True)
    assert snapshot(t) == before


def test_mutating_original_does_not_leak_into_clone():
    t = app_tree()
    c = t.clone()
    before = snapshot(c)
    t.write("/app/etc/conf", b"key=3")
    t.remove("/app/lib/libm.so")
    t.create_file("/app/bin/tool2", size=1)
    t.chmod("/app/etc/conf", 0o600)
    assert snapshot(c) == before


def test_sibling_clones_are_mutually_isolated():
    t = app_tree()
    a, b = t.clone(), t.clone()
    a.write("/app/etc/conf", b"a")
    b.write("/app/etc/conf", b"b")
    assert t.get("/app/etc/conf").data == b"key=1"
    assert a.get("/app/etc/conf").data == b"a"
    assert b.get("/app/etc/conf").data == b"b"


def test_in_place_mutation_of_shared_node_raises():
    t = app_tree()
    t.clone()
    node = t.get("/app/etc/conf")
    with pytest.raises(FsError):
        node.write(b"boom")
    with pytest.raises(FsError):
        node.chmod(0o600)
    with pytest.raises(FsError):
        node.chown(1, 1)
    # ...while the tree-level ops still work (they copy up first)
    t.write("/app/etc/conf", b"fine")
    assert t.get("/app/etc/conf").data == b"fine"


# -- whiteouts over shared subtrees -----------------------------------------

def test_whiteout_over_shared_subtree():
    t = app_tree()
    c = t.clone()
    c.whiteout("/app/lib/libm.so")
    assert isinstance(c.get("/app/lib/libm.so", follow_symlinks=False), WhiteoutNode)
    # the source still sees the real file
    assert isinstance(t.get("/app/lib/libm.so"), FileNode)


def test_merge_with_whiteouts_into_clone_leaves_source_intact():
    base = app_tree()
    c = base.clone()
    upper = FileTree()
    upper.whiteout("/app/etc/conf")
    upper.create_file("/app/etc/conf2", data=b"v2")
    c.merge_from(upper)
    assert not c.exists("/app/etc/conf")
    assert c.get("/app/etc/conf2").data == b"v2"
    # neither the clone's source nor the merged layer changed
    assert base.get("/app/etc/conf").data == b"key=1"
    assert not base.exists("/app/etc/conf2")
    assert upper.get("/app/etc/conf2").data == b"v2"


# -- merge_from shares instead of copying (satellite regression) ------------

def test_merge_from_shares_source_nodes():
    dst = FileTree()
    src = FileTree()
    src.create_file("/opt/pkg/lib.so", size=5_000)
    dst.merge_from(src)
    assert dst.get("/opt/pkg/lib.so") is src.get("/opt/pkg/lib.so")


def test_mutating_merged_into_tree_never_leaks_into_source_layer():
    layer = FileTree()
    layer.create_file("/opt/pkg/lib.so", size=5_000)
    layer.create_file("/opt/pkg/conf", data=b"orig")
    before = snapshot(layer)

    merged = FileTree()
    merged.create_file("/etc/os-release", data=b"base")
    merged.merge_from(layer)
    merged.write("/opt/pkg/conf", b"patched")
    merged.chown("/opt/pkg/lib.so", 42, 42)
    merged.remove("/opt/pkg/lib.so")
    merged.create_file("/opt/pkg/new", size=1)

    assert snapshot(layer) == before
    assert layer.get("/opt/pkg/conf").data == b"orig"


# -- reads over shared trees -------------------------------------------------

def test_walk_and_aggregates_on_shared_trees():
    t = app_tree()
    c = t.clone()
    assert snapshot(c) == snapshot(t)
    assert c.num_files() == t.num_files() == 3
    assert c.total_size() == t.total_size() == 4_000 + 5 + 9_000
    # aggregates track divergence after CoW mutations
    c.create_file("/app/etc/extra", size=100)
    assert c.num_files() == 4 and t.num_files() == 3
    assert c.total_size() == t.total_size() + 100


def test_deep_clone_reallocates_nodes():
    t = app_tree()
    d = t.deep_clone()
    assert snapshot(d) == snapshot(t)
    a, b = t.get("/app/etc/conf"), d.get("/app/etc/conf")
    assert a is not b and a.ino != b.ino
    # deep clones allow in-place node mutation (nothing is shared)
    b.write(b"independent")
    assert t.get("/app/etc/conf").data == b"key=1"


# -- property: CoW clone tracks a deep clone through random mutations --------

PATHS = ["/a", "/b/x", "/b/y", "/c/d/e", "/c/f"]

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "remove", "chmod", "chown", "mkdir", "whiteout"]),
        st.sampled_from(PATHS),
        st.binary(min_size=0, max_size=4),
    ),
    min_size=0,
    max_size=12,
)


def apply_op(tree, op, path, payload):
    try:
        if op == "create":
            tree.create_file(path, data=payload)
        elif op == "write":
            tree.write(path, payload)
        elif op == "remove":
            tree.remove(path)
        elif op == "chmod":
            tree.chmod(path, 0o700)
        elif op == "chown":
            tree.chown(path, 5, 5)
        elif op == "mkdir":
            tree.mkdir(path, parents=True)
        elif op == "whiteout":
            tree.whiteout(path)
    except FsError:
        pass  # missing path / wrong node type: must fail identically on both


@settings(max_examples=80, deadline=None)
@given(op_strategy, op_strategy)
def test_cow_clone_walks_like_deep_clone(setup_ops, mutate_ops):
    base = FileTree()
    for op, path, payload in setup_ops:
        apply_op(base, op, path, payload)
    baseline = snapshot(base)

    cow = base.clone()
    deep = base.deep_clone()
    for op, path, payload in mutate_ops:
        apply_op(cow, op, path, payload)
        apply_op(deep, op, path, payload)

    assert snapshot(cow) == snapshot(deep)
    # and none of it leaked back into the source
    assert snapshot(base) == baseline


# -- digest memoization and profile counters ---------------------------------

def test_digest_memo_invalidated_by_write_chmod_chown():
    t = FileTree()
    node = t.create_file("/f", data=b"v1")
    d1 = node.digest()
    assert node.digest() == d1  # memo hit, same value
    node.write(b"v2")
    assert node.digest() != d1
    # chmod/chown do not feed the hash but must still drop the memo
    d2 = node.digest()
    node.chmod(0o755)
    assert node.digest() == d2
    node.chown(3, 3)
    assert node.digest() == d2


def test_bulk_digest_not_carried_across_copy_up():
    t = FileTree()
    t.create_file("/lib.so", size=500)
    c = t.clone()
    old = t.get("/lib.so")
    new = c.chown("/lib.so", 9, 9)
    # the copy-up allocated a fresh inode; identity-keyed bulk digests
    # must not be shared between the two nodes
    assert old.digest() != new.digest()


def test_cow_profile_counters():
    prof = profile.enable()
    try:
        t = app_tree()
        c = t.clone()
        c.write("/app/etc/conf", b"key=9")
        n = t.get("/app/etc/conf")
        n.digest()
        n.digest()
        assert prof.cow_clones == 1
        assert prof.cow_copy_ups > 0  # spine: root, app, etc, conf
        assert prof.digest_cache_hits >= 1
    finally:
        profile.disable()
