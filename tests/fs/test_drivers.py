"""Tests for mount drivers: overlay union semantics, squash mounts, costs."""

import pytest

from repro.fs import (
    FileTree,
    FsError,
    PROFILES,
    pack_squash,
)
from repro.fs.drivers import mount_bind, mount_overlay, mount_squash
from repro.fs.inode import FileNode


def layer_with(files: dict[str, bytes]) -> FileTree:
    t = FileTree()
    for path, data in files.items():
        t.create_file(path, data=data)
    return t


# -- overlay union semantics -----------------------------------------------------

def test_overlay_upper_layer_wins():
    low = layer_with({"/etc/conf": b"lower", "/bin/tool": b"v1"})
    high = layer_with({"/bin/tool": b"v2"})
    view = mount_overlay([low, high], PROFILES["nvme"])
    node = view.lookup("/bin/tool")
    assert isinstance(node, FileNode) and node.data == b"v2"
    conf = view.lookup("/etc/conf")
    assert isinstance(conf, FileNode) and conf.data == b"lower"


def test_overlay_whiteout_hides_lower():
    low = layer_with({"/etc/secret": b"x"})
    high = FileTree()
    high.whiteout("/etc/secret")
    view = mount_overlay([low, high], PROFILES["nvme"])
    assert view.lookup("/etc/secret") is None
    assert not view.exists("/etc/secret")


def test_overlay_readdir_merges_and_hides():
    low = layer_with({"/d/a": b"", "/d/b": b""})
    high = layer_with({"/d/c": b""})
    high.whiteout("/d/b")
    view = mount_overlay([low, high], PROFILES["nvme"])
    assert view.readdir("/d") == ["a", "c"]


def test_overlay_readdir_missing_dir_raises():
    view = mount_overlay([FileTree()], PROFILES["nvme"])
    with pytest.raises(FsError):
        view.readdir("/nope")


def test_overlay_write_goes_to_upper_with_copy_up():
    low = layer_with({"/data/model.bin": b"0" * 1000})
    view = mount_overlay([low], PROFILES["nvme"], writable=True)
    cost = view.write("/data/model.bin", data=b"new-content")
    assert cost > 0
    assert view.stats["copy_ups"] == 1
    node = view.lookup("/data/model.bin")
    assert isinstance(node, FileNode) and node.data == b"new-content"
    # Lower layer untouched.
    lower_node = low.get("/data/model.bin")
    assert isinstance(lower_node, FileNode) and lower_node.data == b"0" * 1000


def test_overlay_new_file_no_copy_up():
    view = mount_overlay([layer_with({"/x": b""})], PROFILES["nvme"], writable=True)
    view.write("/out/result.dat", size=100)
    assert view.stats["copy_ups"] == 0
    assert view.exists("/out/result.dat")


def test_overlay_remove_whiteouts_lower():
    low = layer_with({"/etc/host.conf": b"x"})
    view = mount_overlay([low], PROFILES["nvme"], writable=True)
    view.remove("/etc/host.conf")
    assert not view.exists("/etc/host.conf")
    assert low.exists("/etc/host.conf")


def test_overlay_readonly_rejects_write():
    view = mount_overlay([layer_with({"/x": b""})], PROFILES["nvme"], writable=False)
    with pytest.raises(FsError, match="read-only"):
        view.write("/y", size=1)


def test_symlink_resolved_across_layers():
    low = layer_with({"/usr/lib/libm.so": b"lib"})
    high = FileTree()
    high.symlink("/lib64", "/usr/lib")
    view = mount_overlay([low, high], PROFILES["nvme"])
    node = view.lookup("/lib64/libm.so")
    assert isinstance(node, FileNode)


# -- fuse vs kernel costs ---------------------------------------------------------

def test_fuse_overlay_slower_metadata_than_kernel_overlay():
    layers = [layer_with({f"/app/m{i}.py": b"x" * 100}) for i in range(3)]
    kernel = mount_overlay(layers, PROFILES["nvme"], fuse=False)
    fuse = mount_overlay(layers, PROFILES["nvme"], fuse=True)
    assert fuse.open("/app/m0.py") > kernel.open("/app/m0.py")


def test_fuse_overlay_bandwidth_penalty():
    layers = [layer_with({"/big.bin": b""})]
    layers[0].create_file("/big.bin", size=100_000_000)
    kernel = mount_overlay(layers, PROFILES["nvme"], fuse=False)
    fuse = mount_overlay(layers, PROFILES["nvme"], fuse=True)
    ck, _ = kernel.read("/big.bin")
    cf, _ = fuse.read("/big.bin")
    assert cf > 1.5 * ck


def test_squash_mounts_readonly_and_cost_ordering():
    tree = FileTree()
    for i in range(20):
        tree.create_file(f"/app/f{i}.py", size=4096)
    img = pack_squash(tree)
    kview = mount_squash(img, fuse=False)
    fview = mount_squash(img, fuse=True)
    with pytest.raises(FsError, match="read-only"):
        kview.write("/new", size=1)
    ck, _ = kview.read("/app/f0.py", random=True)
    cf, _ = fview.read("/app/f0.py", random=True)
    assert cf > ck


def test_squash_image_provenance():
    tree = FileTree()
    tree.create_file("/bin/x", size=10)
    img_root = pack_squash(tree, built_by_uid=0)
    img_user = pack_squash(tree, built_by_uid=1000)
    assert not img_root.is_user_manipulable(1000)
    assert img_user.is_user_manipulable(1000)
    assert not img_user.is_user_manipulable(1001)
    img_shared = pack_squash(tree, built_by_uid=0, writable_by=frozenset({1000}))
    assert img_shared.is_user_manipulable(1000)


def test_squash_compression_and_pack_cost():
    tree = FileTree()
    tree.create_file("/lib/big", size=1_000_000)
    img = pack_squash(tree, compression_ratio=0.4)
    assert img.compressed_size == 400_000
    assert img.uncompressed_size == 1_000_000
    assert img.pack_cost() > 0
    with pytest.raises(ValueError):
        pack_squash(tree, compression_ratio=0.0)


def test_bind_mount_passthrough():
    tree = layer_with({"/host/lib/libcuda.so": b"driver"})
    view = mount_bind(tree, PROFILES["nvme"])
    node = view.lookup("/host/lib/libcuda.so")
    assert isinstance(node, FileNode)
    with pytest.raises(FsError):
        view.write("/host/lib/libcuda.so", data=b"overwrite")


def test_load_all_visits_every_visible_file():
    low = layer_with({"/a": b"1", "/b": b"2"})
    high = layer_with({"/b": b"override", "/c": b"3"})
    view = mount_overlay([low, high], PROFILES["nvme"])
    cost = view.load_all()
    assert cost > 0
    assert view.num_files() == 3


def test_empty_mount_rejected():
    with pytest.raises(FsError):
        from repro.fs.drivers import MountedView, BindDriver
        MountedView(BindDriver, [], PROFILES["nvme"])
