"""Property: an overlay mount of layers is observationally equivalent to
eagerly merging the layers into one tree (modulo whiteouts semantics)."""

from hypothesis import given, settings, strategies as st

from repro.fs import FileTree, PROFILES
from repro.fs.drivers import mount_overlay
from repro.fs.inode import FileNode

PATHS = ["/a", "/b", "/d/x", "/d/y", "/e/f/g"]

layer_strategy = st.lists(
    st.dictionaries(
        st.sampled_from(PATHS),
        st.one_of(st.binary(min_size=0, max_size=6), st.none()),  # None = whiteout
        min_size=0,
        max_size=4,
    ),
    min_size=1,
    max_size=4,
)


def build_layers(specs):
    layers = []
    for spec in specs:
        tree = FileTree()
        for path, content in spec.items():
            if content is None:
                tree.whiteout(path)
            else:
                tree.create_file(path, data=content)
        layers.append(tree)
    return layers


@settings(max_examples=60, deadline=None)
@given(layer_strategy)
def test_overlay_equals_eager_merge(specs):
    layers = build_layers(specs)
    view = mount_overlay([l.clone() for l in layers], PROFILES["nvme"])
    merged = FileTree()
    for layer in layers:
        merged.merge_from(layer)
    merged_files = {p: n.data for p, n in merged.files()}
    for path in PATHS:
        node = view.lookup(path)
        if path in merged_files:
            assert isinstance(node, FileNode)
            assert node.data == merged_files[path]
        else:
            assert not isinstance(node, FileNode)


@settings(max_examples=40, deadline=None)
@given(layer_strategy, st.sampled_from(PATHS), st.binary(min_size=1, max_size=4))
def test_overlay_write_then_read_is_consistent(specs, path, data):
    layers = build_layers(specs)
    view = mount_overlay(layers, PROFILES["nvme"], writable=True)
    view.write(path, data=data)
    node = view.lookup(path)
    assert isinstance(node, FileNode) and node.data == data
    # lower layers untouched by the write (copy-up semantics)
    for layer, spec in zip(layers, specs):
        original = spec.get(path)
        if original is not None:
            lower_node = layer.lookup(path, follow_symlinks=False)
            assert isinstance(lower_node, FileNode) and lower_node.data == original
