"""Tests for cost models and storage backends (incl. MDS contention)."""

import pytest

from repro.fs import LocalDisk, PROFILES, ReadOnlyFilesystemError, SharedFS, TmpFS
from repro.fs.perf import IOCostModel
from repro.sim import Environment


# -- cost model shape invariants (paper §4.1.2 / §3.2) -------------------------

def test_squashfuse_iops_magnitude_below_kernel():
    kernel = PROFILES["squashfs_kernel"].effective_random_iops()
    fuse = PROFILES["squashfuse"].effective_random_iops()
    assert kernel / fuse >= 5, "paper: ~order of magnitude lower IOPS for FUSE"
    assert kernel / fuse <= 50


def test_squashfuse_latency_higher_than_kernel():
    assert PROFILES["squashfuse"].open_cost() > PROFILES["squashfs_kernel"].open_cost()


def test_sharedfs_metadata_dwarfs_local():
    assert PROFILES["sharedfs_client"].open_cost() > 10 * PROFILES["nvme"].open_cost()


def test_decompression_charged_on_squash_reads():
    plain = PROFILES["nvme"].sequential_read_cost(10_000_000)
    squash = PROFILES["squashfs_kernel"].sequential_read_cost(10_000_000)
    assert squash > plain  # CPU decompression tax


def test_with_overhead_derivation():
    base = PROFILES["nvme"]
    derived = base.with_overhead(1e-3, bandwidth_scale=0.5)
    assert derived.per_op_overhead == pytest.approx(base.per_op_overhead + 1e-3)
    assert derived.read_bandwidth == pytest.approx(base.read_bandwidth * 0.5)
    # base unchanged (frozen dataclass semantics)
    assert base.per_op_overhead == 0.0


def test_random_read_slower_than_sequential():
    m = PROFILES["nvme"]
    size = 4096 * 1000
    assert m.random_read_cost(1000) > m.sequential_read_cost(size)


# -- read-only filesystems (squash mounts) -------------------------------------

@pytest.mark.parametrize("profile", ["squashfs_kernel", "squashfuse"])
def test_squash_profiles_reject_writes(profile):
    model = PROFILES[profile]
    assert model.read_only
    with pytest.raises(ReadOnlyFilesystemError, match="read-only"):
        model.write_cost(4096)


def test_read_only_error_is_an_fs_error():
    from repro.fs.tree import FsError

    assert issubclass(ReadOnlyFilesystemError, FsError)


def test_with_overhead_preserves_read_only():
    derived = PROFILES["squashfuse"].with_overhead(1e-3, bandwidth_scale=0.5)
    assert derived.read_only
    with pytest.raises(ReadOnlyFilesystemError):
        derived.write_cost(1)


def test_writable_profiles_still_priced():
    for name, model in PROFILES.items():
        if model.read_only:
            continue
        assert model.write_cost(1_000_000) > 0, name


# -- backends -----------------------------------------------------------------

def make_python_app(backend, n_files=50, file_size=2000, prefix="/app"):
    for i in range(n_files):
        backend.tree.create_file(f"{prefix}/mod_{i:03}.py", size=file_size)


def test_est_open_charges_per_component():
    disk = LocalDisk()
    disk.tree.create_file("/a/b/c/d.txt", size=1)
    shallow = LocalDisk()
    shallow.tree.create_file("/d.txt", size=1)
    assert disk.est_open("/a/b/c/d.txt") > shallow.est_open("/d.txt")


def test_est_read_missing_file_raises():
    disk = LocalDisk()
    with pytest.raises(OSError):
        disk.est_read_file("/nope")


def test_est_load_tree_counts_all_files():
    disk = LocalDisk()
    make_python_app(disk, n_files=10)
    cost = disk.est_load_tree("/app")
    assert cost > 0
    assert disk.stats["opens"] == 10
    assert disk.stats["bytes_read"] == 10 * 2000


def test_tmpfs_faster_than_nvme():
    tmp, disk = TmpFS(), LocalDisk()
    make_python_app(tmp)
    make_python_app(disk)
    assert tmp.est_load_tree("/app") < disk.est_load_tree("/app")


def test_proc_requires_env():
    disk = LocalDisk()
    disk.tree.create_file("/f", size=10)
    gen = disk.proc_read_file("/f")
    with pytest.raises(RuntimeError, match="Environment"):
        next(gen)


def test_proc_read_in_environment():
    env = Environment()
    disk = LocalDisk(env=env)
    disk.tree.create_file("/f", size=2_500_000)

    p = env.process(disk.proc_read_file("/f"))
    size = env.run(until=p)
    assert size == 2_500_000
    assert env.now > 0


def test_sharedfs_mds_contention_grows_with_clients():
    """Many clients doing small-file opens queue at the MDS: per-client
    startup latency grows with the client count (the §3.2 small-file
    problem), while a single client sees no queueing."""

    def startup_time(n_clients: int) -> float:
        env = Environment()
        fs = SharedFS(env=env, mds_capacity=4)
        make_python_app(fs, n_files=40)
        procs = [env.process(fs.proc_load_tree("/app")) for _ in range(n_clients)]
        env.run()
        return env.now

    t1, t16 = startup_time(1), startup_time(16)
    assert t16 > 3 * t1


def test_sharedfs_attach_env():
    fs = SharedFS()
    assert fs.mds is None
    env = Environment()
    fs.attach_env(env)
    assert fs.mds is not None


def _sharedfs_startup_time(n_clients: int, batch: int, mds_capacity: int = 4) -> float:
    env = Environment()
    fs = SharedFS(env=env, mds_capacity=mds_capacity)
    fs.io_batch = batch
    make_python_app(fs, n_files=40)
    for _ in range(n_clients):
        env.process(fs.proc_load_tree("/app"))
    env.run()
    return env.now


@pytest.mark.parametrize("n_clients", [1, 4, 8, 12])
def test_sharedfs_load_tree_invariant_under_batch_size(n_clients):
    """The chunked MDS fan-out must not change virtual-time results in
    the benchmarks' regime: clients fitting within ``mds_capacity`` or
    saturating it in full waves (count a multiple of capacity)."""
    fine = _sharedfs_startup_time(n_clients, batch=5)
    coarse = _sharedfs_startup_time(n_clients, batch=1000)
    assert fine == pytest.approx(coarse, rel=1e-3)
    assert fine > 0


def test_sharedfs_batch_granularity_with_partial_wave():
    """With a partial last wave (6 clients over capacity 4), coarse
    chunks hold whole-tree MDS slots and cannot load-balance the idle
    capacity, so they finish no earlier than fine-grained RPCs — a
    documented granularity effect, bounded by the wave occupancy."""
    fine = _sharedfs_startup_time(6, batch=5)
    coarse = _sharedfs_startup_time(6, batch=1000)
    assert coarse >= fine
    # two full-capacity waves is the worst case for 6 clients over 4 slots
    assert coarse <= _sharedfs_startup_time(8, batch=1000) * 1.001


def test_sharedfs_open_uses_mds_per_component():
    env = Environment()
    fs = SharedFS(env=env, mds_capacity=32)
    fs.tree.create_file("/a/b/c.txt", size=1)
    p = env.process(fs.proc_open("/a/b/c.txt"))
    env.run(until=p)
    three_level = env.now

    env2 = Environment()
    fs2 = SharedFS(env=env2, mds_capacity=32)
    fs2.tree.create_file("/c.txt", size=1)
    p2 = env2.process(fs2.proc_open("/c.txt"))
    env2.run(until=p2)
    assert three_level == pytest.approx(3 * env2.now)
