"""Tests for FileTree path resolution and mutation."""

import pytest
from hypothesis import given, strategies as st

from repro.fs import DirNode, FileNode, FileTree, FsError, SymlinkNode
from repro.fs.tree import normalize


def test_mkdir_and_lookup():
    t = FileTree()
    t.mkdir("/a/b/c", parents=True)
    assert t.is_dir("/a/b/c")
    assert not t.exists("/a/b/c/d")


def test_mkdir_without_parents_fails():
    t = FileTree()
    with pytest.raises(FsError):
        t.mkdir("/a/b/c", parents=False)


def test_create_and_read_file():
    t = FileTree()
    node = t.create_file("/etc/nsswitch.conf", data=b"passwd: files")
    assert t.is_file("/etc/nsswitch.conf")
    assert node.size == len(b"passwd: files")
    got = t.get("/etc/nsswitch.conf")
    assert isinstance(got, FileNode) and got.data == b"passwd: files"


def test_size_only_file():
    t = FileTree()
    node = t.create_file("/usr/lib/libbig.so", size=50_000_000)
    assert node.size == 50_000_000
    assert node.data is None


def test_size_data_conflict_rejected():
    with pytest.raises(ValueError):
        FileNode(data=b"xy", size=5)


def test_symlink_resolution():
    t = FileTree()
    t.create_file("/usr/lib/libc.so.6", size=100)
    t.symlink("/lib", "/usr/lib")
    node = t.get("/lib/libc.so.6")
    assert isinstance(node, FileNode) and node.size == 100


def test_symlink_not_followed_when_asked():
    t = FileTree()
    t.create_file("/target", size=1)
    t.symlink("/link", "/target")
    node = t.get("/link", follow_symlinks=False)
    assert isinstance(node, SymlinkNode)


def test_symlink_loop_detected():
    t = FileTree()
    t.symlink("/a", "/b")
    t.symlink("/b", "/a")
    with pytest.raises(FsError, match="symbolic links"):
        t.get("/a/whatever")


def test_remove():
    t = FileTree()
    t.create_file("/x/y", size=1)
    t.remove("/x/y")
    assert not t.exists("/x/y")
    with pytest.raises(FsError):
        t.remove("/x/y")


def test_remove_root_rejected():
    t = FileTree()
    with pytest.raises(FsError):
        t.remove("/")


def test_walk_is_sorted_and_complete():
    t = FileTree()
    for name in ("zeta", "alpha", "mid"):
        t.create_file(f"/pkg/{name}.py", size=10)
    paths = [p for p, n in t.walk() if isinstance(n, FileNode)]
    assert paths == ["/pkg/alpha.py", "/pkg/mid.py", "/pkg/zeta.py"]


def test_aggregate_stats():
    t = FileTree()
    t.create_file("/a", size=100)
    t.create_file("/b/c", size=200)
    assert t.num_files() == 2
    assert t.total_size() == 300


def test_clone_isolates_mutations():
    t = FileTree()
    t.create_file("/data/file", data=b"orig")
    c = t.clone()
    # clones share frozen nodes, so the write goes through the tree API
    # (which copies up) rather than mutating the shared node in place
    node = c.write("/data/file", b"changed")
    assert isinstance(node, FileNode) and node.data == b"changed"
    orig = t.get("/data/file")
    assert isinstance(orig, FileNode) and orig.data == b"orig"


def test_merge_from_upper_wins():
    base = FileTree()
    base.create_file("/etc/conf", data=b"old")
    base.create_file("/etc/keep", data=b"keep")
    upper = FileTree()
    upper.create_file("/etc/conf", data=b"new")
    base.merge_from(upper)
    conf = base.get("/etc/conf")
    keep = base.get("/etc/keep")
    assert isinstance(conf, FileNode) and conf.data == b"new"
    assert isinstance(keep, FileNode) and keep.data == b"keep"


def test_merge_from_applies_whiteouts():
    base = FileTree()
    base.create_file("/etc/secret", data=b"x")
    upper = FileTree()
    upper.whiteout("/etc/secret")
    base.merge_from(upper)
    assert not base.exists("/etc/secret")


def test_attach_subtree():
    t = FileTree()
    sub = DirNode()
    sub.children["inner"] = FileNode(size=5)
    t.attach("/mnt/image", sub)
    assert t.is_file("/mnt/image/inner")


def test_setuid_bit():
    t = FileTree()
    node = t.create_file("/usr/bin/helper", size=10, mode=0o4755)
    assert node.setuid


@given(
    st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=4),
        min_size=1,
        max_size=5,
    )
)
def test_property_created_paths_resolve(parts):
    t = FileTree()
    path = "/" + "/".join(parts)
    t.create_file(path, size=1)
    assert t.is_file(path)
    # Every prefix is a directory.
    for i in range(1, len(parts)):
        assert t.is_dir("/" + "/".join(parts[:i]))


@given(st.text(alphabet="abc/.", min_size=1, max_size=20))
def test_property_normalize_idempotent(raw):
    once = normalize(raw)
    assert normalize(once) == once
    assert once.startswith("/")


@given(
    st.dictionaries(
        st.text(alphabet="xyz", min_size=1, max_size=3),
        st.integers(min_value=0, max_value=1000),
        min_size=1,
        max_size=8,
    )
)
def test_property_total_size_matches_sum(files):
    t = FileTree()
    for name, size in files.items():
        t.create_file(f"/d/{name}", size=size)
    assert t.total_size() == sum(files.values())
    assert t.num_files() == len(files)
