"""Fixtures for Kubernetes tests."""

import pytest

from repro.cluster import HostNode
from repro.engines import PodmanEngine
from repro.k8s import CRIRuntime
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def registry():
    reg = OCIDistributionRegistry(name="site")
    builder = Builder(BaseImageCatalog())
    img = builder.build_dockerfile("FROM alpine:3.18\nRUN write /srv/app 1000000")
    reg.push_image("pipelines/step", "v1", img)
    return reg


def make_cri(registry, name="knode"):
    host = HostNode(name=name)
    engine = PodmanEngine(host)
    return CRIRuntime(engine, registry), host
