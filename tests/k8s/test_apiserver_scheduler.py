"""Tests for the API server (CRUD + watch) and the pod scheduler."""

import pytest

from repro.k8s import (
    APIServer,
    ContainerSpec,
    K8sNode,
    K8sScheduler,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
)
from repro.k8s.apiserver import WatchEventType
from repro.k8s.objects import NodeCondition
from repro.sim import Environment


def make_pod(name, cpu=1.0, gpu=0, selector=None, namespace="default"):
    return Pod(
        metadata=ObjectMeta(name=name, namespace=namespace),
        spec=PodSpec(
            containers=[
                ContainerSpec(
                    name="main",
                    image="registry.site.local/pipelines/step:v1",
                    resources=ResourceRequests(cpu=cpu, gpu=gpu),
                )
            ],
            node_selector=selector or {},
        ),
    )


def make_node(name, cpu=8, gpu=0, labels=None, ready=True):
    return K8sNode(
        metadata=ObjectMeta(name=name, labels=labels or {}),
        capacity=ResourceRequests(cpu=cpu, memory=64 * 2**30, gpu=gpu),
        condition=NodeCondition(ready=ready),
    )


# -- API server ---------------------------------------------------------------

def test_crud_roundtrip():
    api = APIServer()
    pod = make_pod("p1")
    api.create("Pod", pod)
    assert api.get("Pod", "p1") is pod
    with pytest.raises(KeyError, match="already exists"):
        api.create("Pod", make_pod("p1"))
    pod.phase = PodPhase.RUNNING
    api.update("Pod", pod)
    assert api.delete("Pod", "p1") is pod
    assert api.get("Pod", "p1") is None
    assert api.delete("Pod", "ghost") is None


def test_update_unknown_object():
    api = APIServer()
    with pytest.raises(KeyError, match="not found"):
        api.update("Pod", make_pod("nope"))


def test_namespaced_listing():
    api = APIServer()
    api.create("Pod", make_pod("a", namespace="bio"))
    api.create("Pod", make_pod("b", namespace="ml"))
    assert len(api.list("Pod")) == 2
    assert len(api.list("Pod", namespace="bio")) == 1


def test_resource_version_increases():
    api = APIServer()
    pod = make_pod("p")
    api.create("Pod", pod)
    v1 = pod.metadata.resource_version
    api.update("Pod", pod)
    assert pod.metadata.resource_version > v1


def test_watch_receives_events_and_replays():
    api = APIServer()
    api.create("Pod", make_pod("pre-existing"))
    events = []
    api.watch("Pod", lambda ev: events.append((ev.type, ev.obj.metadata.name)))
    assert events == [(WatchEventType.ADDED, "pre-existing")]
    pod = make_pod("p2")
    api.create("Pod", pod)
    api.update("Pod", pod)
    api.delete("Pod", "p2")
    kinds = [t for t, _ in events[1:]]
    assert kinds == [WatchEventType.ADDED, WatchEventType.MODIFIED, WatchEventType.DELETED]


def test_unwatch():
    api = APIServer()
    events = []
    cb = lambda ev: events.append(ev)
    api.watch("Pod", cb)
    api.unwatch("Pod", cb)
    api.create("Pod", make_pod("p"))
    assert events == []


# -- scheduler ----------------------------------------------------------------------

def test_scheduler_binds_pod_to_fitting_node():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    api.create("Node", make_node("n1", cpu=8))
    pod = make_pod("p", cpu=4)
    api.create("Pod", pod)
    env.run(until=1)
    assert pod.node_name == "n1"


def test_scheduler_respects_resources():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    api.create("Node", make_node("small", cpu=2))
    big = make_pod("big", cpu=16)
    api.create("Pod", big)
    env.run(until=1)
    assert big.node_name is None  # unschedulable


def test_scheduler_least_allocated_spreading():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    api.create("Node", make_node("n1", cpu=8))
    api.create("Node", make_node("n2", cpu=8))
    pods = [make_pod(f"p{i}", cpu=2) for i in range(4)]
    for p in pods:
        api.create("Pod", p)
    env.run(until=1)
    placements = sorted(p.node_name for p in pods)
    assert placements == ["n1", "n1", "n2", "n2"]


def test_scheduler_node_selector():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    api.create("Node", make_node("cpu-node", cpu=8))
    api.create("Node", make_node("gpu-node", cpu=8, gpu=4, labels={"accel": "a100"}))
    pod = make_pod("needs-gpu", cpu=1, gpu=1, selector={"accel": "a100"})
    api.create("Pod", pod)
    env.run(until=1)
    assert pod.node_name == "gpu-node"


def test_scheduler_skips_not_ready_nodes():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    api.create("Node", make_node("dead", ready=False))
    pod = make_pod("p")
    api.create("Pod", pod)
    env.run(until=1)
    assert pod.node_name is None


def test_scheduler_retries_when_node_appears():
    env = Environment()
    api = APIServer()
    K8sScheduler(env, api)
    pod = make_pod("p")
    api.create("Pod", pod)

    def add_node(env, api):
        yield env.timeout(5)
        api.create("Node", make_node("late"))

    env.process(add_node(env, api))
    env.run(until=10)
    assert pod.node_name == "late"


def test_release_pod_returns_resources():
    env = Environment()
    api = APIServer()
    sched = K8sScheduler(env, api)
    node = make_node("n", cpu=4)
    api.create("Node", node)
    pod = make_pod("p", cpu=4)
    api.create("Pod", pod)
    env.run(until=1)
    assert node.allocatable().cpu == 0
    pod.phase = PodPhase.SUCCEEDED
    sched.release_pod(pod)
    assert node.allocatable().cpu == 4
