"""Tests for kubelets (incl. rootless mode), K3s, virtual kubelet (KNoC),
and the bridge operator."""

import pytest

from repro.cluster import HostNode
from repro.engines import PodmanEngine
from repro.k8s import (
    APIServer,
    BridgeOperator,
    ContainerSpec,
    CRIRuntime,
    FullK8sServer,
    K3sServer,
    Kubelet,
    KubeletError,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
    VirtualKubelet,
    WLMJobRequest,
)
from repro.k8s.k3s import FullK8sServer
from repro.kernel import KernelConfig
from repro.sim import Environment
from repro.wlm import JobState, SlurmController

from tests.k8s.conftest import make_cri


def make_pod(name, image="registry.site.local/pipelines/step:v1", duration=10.0, cpu=1.0):
    return Pod(
        metadata=ObjectMeta(name=name),
        spec=PodSpec(
            containers=[ContainerSpec(name="main", image=image,
                                      resources=ResourceRequests(cpu=cpu))],
            duration=duration,
        ),
    )


def test_kubelet_registers_and_runs_pod(env, registry):
    server = K3sServer(env)
    cri, host = make_cri(registry)
    kubelet = Kubelet(env, server.api, "knode", cri)

    def bring_up(env):
        yield server.ready
        kubelet.start()

    env.process(bring_up(env))
    pod = make_pod("job-1", duration=5)

    def submit(env):
        yield env.timeout(15)
        server.api.create("Pod", pod)

    env.process(submit(env))
    env.run(until=60)
    assert pod.phase is PodPhase.SUCCEEDED
    assert pod.node_name == "knode"
    assert kubelet.stats["pods_started"] == 1
    assert pod.end_time - pod.start_time == pytest.approx(5, abs=0.1)


def test_k3s_much_faster_cold_start_than_full_k8s():
    assert K3sServer.startup_cost < FullK8sServer.startup_cost / 4


def test_kubelet_stop_marks_node_not_ready(env, registry):
    server = K3sServer(env)
    cri, _ = make_cri(registry)
    kubelet = Kubelet(env, server.api, "knode", cri)

    def lifecycle(env):
        yield server.ready
        kubelet.start()
        yield env.timeout(30)
        kubelet.stop()

    env.process(lifecycle(env))
    env.run(until=60)
    node = server.api.get("Node", "knode")
    assert node is not None and not node.condition.ready


def test_rootless_kubelet_requires_delegated_cgroup(env, registry):
    cri, host = make_cri(registry)
    api = APIServer()
    user = host.kernel.spawn(uid=1000)
    kubelet = Kubelet(env, api, "n", cri, user_proc=user, cgroup_path=None)
    with pytest.raises(KubeletError, match="delegated"):
        kubelet.start()
    host.kernel.cgroups.create("/slurm/uid_1000/job_1")
    kubelet2 = Kubelet(env, api, "n", cri, user_proc=user, cgroup_path="/slurm/uid_1000/job_1")
    with pytest.raises(KubeletError, match="delegated"):
        kubelet2.start()
    host.kernel.cgroups.delegate("/slurm/uid_1000/job_1", uid=1000)
    kubelet2.start()  # now fine


def test_rootless_kubelet_requires_cgroup_v2(env, registry):
    host = HostNode(name="legacy", kernel_config=KernelConfig(cgroup_version=1))
    engine = PodmanEngine(host)
    cri = CRIRuntime(engine, registry)
    user = host.kernel.spawn(uid=1000)
    kubelet = Kubelet(env, APIServer(), "n", cri, user_proc=user, cgroup_path="/x")
    with pytest.raises(KubeletError, match="cgroup v2"):
        kubelet.start()


def test_rootless_kubelet_pods_run_as_job_user(env, registry):
    server = K3sServer(env)
    cri, host = make_cri(registry)
    host.kernel.cgroups.create("/slurm/uid_1000/job_7")
    host.kernel.cgroups.delegate("/slurm/uid_1000/job_7", uid=1000)
    user = host.kernel.spawn(uid=1000)
    kubelet = Kubelet(env, server.api, "alloc-node", cri,
                      user_proc=user, cgroup_path="/slurm/uid_1000/job_7")

    def bring_up(env):
        yield server.ready
        kubelet.start()

    env.process(bring_up(env))
    pod = make_pod("rootless-pod", duration=3)

    def submit(env):
        yield env.timeout(15)
        server.api.create("Pod", pod)

    env.process(submit(env))
    env.run(until=60)
    assert pod.phase is PodPhase.SUCCEEDED
    result = pod.container_results[0]
    assert result.container.proc.host_uid() == 1000
    cg = host.kernel.cgroups.cgroup_of(result.container.proc.pid)
    assert cg is not None and cg.path.startswith("/slurm/uid_1000/job_7/pod-")


def test_virtual_kubelet_translates_pods_to_wlm_jobs(env, registry):
    """KNoC (§6.4): pods run as WLM jobs; accounting lands in Slurm."""
    hosts = [HostNode(name=f"c{i}") for i in range(2)]
    wlm = SlurmController(env, hosts)
    engines = {h.name: PodmanEngine(h) for h in hosts}
    server = K3sServer(env)
    vk = VirtualKubelet(env, server.api, wlm, engines, registry)

    def bring_up(env):
        yield server.ready
        vk.start()

    env.process(bring_up(env))
    pods = [make_pod(f"wf-{i}", duration=20, cpu=2) for i in range(3)]

    def submit(env):
        yield env.timeout(12)
        for p in pods:
            server.api.create("Pod", p)

    env.process(submit(env))
    env.run(until=400)
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    # every pod is attributable in WLM accounting
    records = wlm.accounting.by_comment_prefix("kubernetes-pod:")
    assert len(records) == 3
    assert all(r.user_uid == 1000 for r in records)


def test_bridge_operator_requires_explicit_request(env, registry):
    """§6.4 bridge drawback: a plain Pod is ignored; WLMJobRequest works."""
    hosts = [HostNode(name="c0")]
    wlm = SlurmController(env, hosts)
    api = APIServer()
    operator = BridgeOperator(env, api, wlm)

    api.create("Pod", make_pod("plain-pod"))  # NOT picked up
    request = WLMJobRequest(
        metadata=ObjectMeta(name="explicit"), nodes=1, user_uid=1000, duration=30
    )
    api.create("WLMJobRequest", request)
    env.run(until=200)
    assert operator.stats["submitted"] == 1
    assert request.wlm_job_id is not None
    assert request.status == "Completed"
    assert len(wlm.accounting.by_comment_prefix("bridge-operator:")) == 1
    # the plain pod went nowhere
    assert api.get("Pod", "plain-pod").phase is PodPhase.PENDING
