"""Failure handling: dead kubelets, pod eviction, controller behaviour."""

import pytest

from repro.k8s import K3sServer, Kubelet, NodeLifecycleController, PodPhase
from repro.sim import Environment

from tests.k8s.conftest import make_cri
from tests.k8s.test_kubelet_and_bridges import make_pod


def test_dead_kubelet_marks_node_not_ready_and_evicts_pods(env, registry):
    server = K3sServer(env)
    cri, host = make_cri(registry)
    kubelet = Kubelet(env, server.api, "knode", cri)
    controller_holder = {}

    def bring_up(env):
        yield server.ready
        kubelet.start()
        controller_holder["ctl"] = NodeLifecycleController(env, server.api)

    env.process(bring_up(env))
    # a service pod that never finishes on its own
    pod = make_pod("stuck-service", duration=None)

    def submit_then_kill(env):
        yield env.timeout(15)
        server.api.create("Pod", pod)
        yield env.timeout(20)
        assert pod.phase is PodPhase.RUNNING
        kubelet.stop()  # the allocation died / node crashed

    env.process(submit_then_kill(env))
    env.run(until=300)
    controller = controller_holder["ctl"]
    node = server.api.get("Node", "knode")
    assert not node.condition.ready
    assert pod.phase is PodPhase.FAILED
    assert "not ready" in pod.message
    assert controller.stats["pods_evicted"] == 1


def test_healthy_node_not_evicted(env, registry):
    server = K3sServer(env)
    cri, _ = make_cri(registry)
    kubelet = Kubelet(env, server.api, "knode", cri)

    def bring_up(env):
        yield server.ready
        kubelet.start()
        NodeLifecycleController(env, server.api)

    env.process(bring_up(env))
    pod = make_pod("fine", duration=None)

    def submit(env):
        yield env.timeout(15)
        server.api.create("Pod", pod)

    env.process(submit(env))
    env.run(until=200)
    # heartbeats keep flowing: pod still running, node ready
    assert pod.phase is PodPhase.RUNNING
    assert server.api.get("Node", "knode").condition.ready
