"""Property test: the indexed scheduler equals the linear-scan oracle.

The indexed path (pending queue + lazy-deletion node heap) is a pure
perf rewrite of the retained ``indexed=False`` linear pass; for any
node fleet and pod stream the two must produce identical bindings,
stats and node allocations at identical virtual times.
"""

from hypothesis import given, settings, strategies as st

from repro.k8s import (
    APIServer,
    ContainerSpec,
    K8sNode,
    K8sScheduler,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
)
from repro.k8s.objects import NodeCondition
from repro.sim import Environment

ZONES = ("a", "b")


def make_pod(name, cpu, gpu=0, selector=None):
    return Pod(
        metadata=ObjectMeta(name=name),
        spec=PodSpec(
            containers=[
                ContainerSpec(
                    name="main",
                    image="registry.site.local/pipelines/step:v1",
                    resources=ResourceRequests(cpu=cpu, gpu=gpu),
                )
            ],
            node_selector=selector or {},
        ),
    )


def make_node(name, cpu, gpu, ready, zone):
    return K8sNode(
        metadata=ObjectMeta(name=name, labels={"zone": zone}),
        capacity=ResourceRequests(cpu=cpu, memory=64 * 2**30, gpu=gpu),
        condition=NodeCondition(ready=ready),
    )


node_strategy = st.lists(
    st.tuples(
        st.sampled_from((4, 8, 16)),        # cpu capacity
        st.integers(min_value=0, max_value=1),  # gpus
        st.booleans(),                      # ready
        st.sampled_from(ZONES),             # zone label
    ),
    min_size=1,
    max_size=10,
)

pod_strategy = st.lists(
    st.tuples(
        st.sampled_from((1, 2, 4, 8)),          # cpu request
        st.integers(min_value=0, max_value=1),  # gpu request
        st.sampled_from((None,) + ZONES),       # node selector
    ),
    min_size=1,
    max_size=30,
)


def run_mode(indexed, nodes_data, pods_data):
    env = Environment()
    api = APIServer()
    for i, (cpu, gpu, ready, zone) in enumerate(nodes_data):
        api.create("Node", make_node(f"n{i:02}", cpu, gpu, ready, zone))
    sched = K8sScheduler(env, api, indexed=indexed)

    def driver(env):
        pods = []
        # pods arrive in bursts of five, one second apart, so several
        # scheduling passes run against a half-filled fleet
        for i, (cpu, gpu, zone) in enumerate(pods_data):
            selector = {"zone": zone} if zone else {}
            pod = make_pod(f"p{i:03}", cpu, gpu, selector)
            pods.append(pod)
            api.create("Pod", pod)
            if i % 5 == 4:
                yield env.timeout(1.0)
        yield env.timeout(5.0)
        # finish every other bound pod — released capacity must let the
        # same stragglers through on both paths
        for pod in pods[::2]:
            if pod.bound:
                pod.phase = PodPhase.SUCCEEDED
                sched.release_pod(pod)
                api.update("Pod", pod)

    env.process(driver(env))
    env.run(until=60.0)
    return (
        {p.metadata.name: p.node_name for p in api.pods()},
        dict(sched.stats),
        {n.metadata.name: n.allocated.cpu for n in api.nodes()},
        env.now,
    )


@settings(max_examples=30, deadline=None)
@given(node_strategy, pod_strategy)
def test_indexed_scheduler_matches_linear_oracle(nodes_data, pods_data):
    indexed = run_mode(True, nodes_data, pods_data)
    linear = run_mode(False, nodes_data, pods_data)
    assert indexed == linear
