"""Tests for cgroup v1/v2 semantics and delegation."""

import pytest

from repro.kernel import Cgroup, CgroupManager, Controller
from repro.kernel.errors import EINVAL, ENOENT, EPERM


def test_create_and_paths():
    mgr = CgroupManager(version=2)
    node = mgr.create("/slurm/job_1/step_0")
    assert node.path == "/slurm/job_1/step_0"
    assert mgr.exists("/slurm/job_1")


def test_invalid_version():
    with pytest.raises(EINVAL):
        CgroupManager(version=3)


def test_unprivileged_create_needs_delegation_v2():
    mgr = CgroupManager(version=2)
    mgr.create("/user.slice/user-1000")
    with pytest.raises(EPERM, match="delegated"):
        mgr.create("/user.slice/user-1000/kubelet", by_uid=1000)
    mgr.delegate("/user.slice/user-1000", uid=1000)
    node = mgr.create("/user.slice/user-1000/kubelet/pod-a", by_uid=1000)
    assert node.path == "/user.slice/user-1000/kubelet/pod-a"


def test_delegation_unavailable_on_v1():
    mgr = CgroupManager(version=1)
    mgr.create("/u")
    with pytest.raises(EPERM, match="v1"):
        mgr.delegate("/u", uid=1000)
    with pytest.raises(EPERM, match="v1"):
        mgr.create("/u/sub", by_uid=1000)


def test_only_root_delegates():
    mgr = CgroupManager(version=2)
    mgr.create("/x")
    with pytest.raises(EPERM, match="root"):
        mgr.delegate("/x", uid=1000, by_uid=1000)


def test_effective_limit_tightest_ancestor():
    mgr = CgroupManager(version=2)
    mgr.create("/a/b/c")
    mgr.set_limit("/a", Controller.MEMORY, 16e9)
    mgr.set_limit("/a/b/c", Controller.MEMORY, 4e9)
    assert mgr._resolve("/a/b/c").effective_limit(Controller.MEMORY) == 4e9
    mgr.set_limit("/a", Controller.MEMORY, 2e9)
    assert mgr._resolve("/a/b/c").effective_limit(Controller.MEMORY) == 2e9
    assert mgr._resolve("/a/b/c").effective_limit(Controller.CPU) is None


def test_devices_controller_rejected_on_v2():
    mgr = CgroupManager(version=2)
    mgr.create("/j")
    with pytest.raises(EINVAL):
        mgr.set_limit("/j", Controller.DEVICES, 1)
    # fine on v1
    mgr1 = CgroupManager(version=1)
    mgr1.create("/j")
    mgr1.set_limit("/j", Controller.DEVICES, 1)


def test_unprivileged_limit_write_requires_delegation():
    mgr = CgroupManager(version=2)
    mgr.create("/d")
    with pytest.raises(EPERM):
        mgr.set_limit("/d", Controller.CPU, 1.0, by_uid=1000)
    mgr.delegate("/d", uid=1000)
    mgr.set_limit("/d", Controller.CPU, 1.0, by_uid=1000)


def test_attach_moves_pid_between_cgroups():
    mgr = CgroupManager(version=2)
    mgr.create("/one")
    mgr.create("/two")
    mgr.attach("/one", pid=42)
    assert mgr.cgroup_of(42).path == "/one"
    mgr.attach("/two", pid=42)
    assert mgr.cgroup_of(42).path == "/two"
    one = mgr._resolve("/one")
    assert 42 not in one.procs


def test_attach_permission():
    mgr = CgroupManager(version=2)
    mgr.create("/locked")
    with pytest.raises(EPERM):
        mgr.attach("/locked", pid=7, by_uid=1000)


def test_charge_propagates_to_ancestors():
    mgr = CgroupManager(version=2)
    leaf = mgr.create("/acct/job/step")
    leaf.charge(Controller.CPU, 12.5)
    assert mgr._resolve("/acct/job").usage[Controller.CPU] == 12.5
    assert mgr.root.usage[Controller.CPU] == 12.5
    leaf.charge(Controller.CPU, 2.5)
    assert mgr.root.usage[Controller.CPU] == 15.0


def test_missing_cgroup_raises():
    mgr = CgroupManager(version=2)
    with pytest.raises(ENOENT):
        mgr.attach("/ghost", pid=1)
