"""Tests for mount security rules, pivot_root/chroot, setuid, ptrace."""

import pytest

from repro.fs import FileTree, PROFILES, pack_squash
from repro.fs.drivers import mount_bind, mount_overlay, mount_squash
from repro.kernel import (
    Capability,
    EINVAL,
    ENOENT,
    EPERM,
    Kernel,
    KernelConfig,
    NamespaceKind,
)


@pytest.fixture
def kernel():
    return Kernel(KernelConfig.modern_hpc())


@pytest.fixture
def rootless(kernel):
    """User 1000 inside its own user+mount namespace (the HPC pattern)."""
    proc = kernel.spawn(uid=1000)
    kernel.unshare(proc, [NamespaceKind.USER, NamespaceKind.MNT])
    return proc


def squash_image(built_by_uid=0):
    tree = FileTree()
    tree.create_file("/app/bin/run", size=1000)
    return pack_squash(tree, built_by_uid=built_by_uid)


# -- the §4.1.2 block-device rule --------------------------------------------------

def test_kernel_squashfs_mount_denied_for_rootless_user(kernel, rootless):
    """Even with full caps in their own userns, a user may not feed the
    in-kernel SquashFS driver (unhardened against crafted images)."""
    view = mount_squash(squash_image(), fuse=False)
    with pytest.raises(EPERM, match="initial"):
        kernel.mount(rootless, view, "/mnt/img")


def test_kernel_squashfs_mount_allowed_for_initial_root(kernel):
    view = mount_squash(squash_image(), fuse=False)
    entry = kernel.mount(kernel.init, view, "/mnt/img")
    assert entry.driver.name == "squashfs"


def test_kernel_squashfs_mount_allowed_via_setuid_helper(kernel):
    """Shifter/Sarus route: a setuid-root helper mounts on the user's
    behalf (euid 0 in the initial namespace)."""
    from repro.fs.inode import FileNode

    user = kernel.spawn(uid=1000)
    helper_bin = FileNode(size=50_000, uid=0, gid=0, mode=0o4755)
    helper = kernel.exec_setuid(user, helper_bin, argv=("squashfs-mount",))
    assert helper.euid == 0 and helper.creds.uid == 1000
    view = mount_squash(squash_image(), fuse=False)
    kernel.mount(helper, view, "/mnt/img")


def test_squashfuse_mount_allowed_for_rootless_user(kernel, rootless):
    view = mount_squash(squash_image(built_by_uid=1000), fuse=True)
    entry = kernel.mount(rootless, view, "/mnt/img")
    assert entry.driver.is_fuse


def test_fuse_unavailable_blocks_squashfuse():
    kernel = Kernel(KernelConfig.legacy_hpc())  # fuse_available=False
    view = mount_squash(squash_image(), fuse=True)
    with pytest.raises(ENOENT, match="fuse"):
        kernel.mount(kernel.init, view, "/mnt/img")


# -- overlay rules -----------------------------------------------------------------

def test_overlay_in_userns_on_modern_kernel(kernel, rootless):
    layers = [FileTree()]
    layers[0].create_file("/bin/sh", size=100)
    view = mount_overlay(layers, PROFILES["nvme"])
    kernel.mount(rootless, view, "/merged")


def test_overlay_in_userns_denied_on_old_kernel():
    cfg = KernelConfig(version=(5, 4), unprivileged_userns=True)
    kernel = Kernel(cfg)
    proc = kernel.spawn(uid=1000)
    kernel.unshare(proc, [NamespaceKind.USER, NamespaceKind.MNT])
    view = mount_overlay([FileTree()], PROFILES["nvme"])
    with pytest.raises(EPERM, match="5.11"):
        kernel.mount(proc, view, "/merged")


def test_fuse_overlay_works_on_old_kernel_with_fuse():
    """fuse-overlayfs is the workaround Docker/Podman use where kernel
    overlay-in-userns is unavailable."""
    cfg = KernelConfig(version=(5, 4), unprivileged_userns=True, fuse_available=True)
    kernel = Kernel(cfg)
    proc = kernel.spawn(uid=1000)
    kernel.unshare(proc, [NamespaceKind.USER, NamespaceKind.MNT])
    view = mount_overlay([FileTree()], PROFILES["nvme"], fuse=True)
    kernel.mount(proc, view, "/merged")


def test_bind_mount_requires_userns_caps(kernel):
    plain = kernel.spawn(uid=1000)
    view = mount_bind(FileTree(), PROFILES["nvme"])
    with pytest.raises(EPERM):
        kernel.mount(plain, view, "/target")


def test_umount(kernel, rootless):
    view = mount_bind(FileTree(), PROFILES["nvme"])
    kernel.mount(rootless, view, "/target")
    kernel.umount(rootless, "/target")
    assert not rootless.mount_table.is_mount_point("/target")
    with pytest.raises(ENOENT):
        kernel.umount(rootless, "/target")


# -- pivot_root / chroot -------------------------------------------------------------

def test_pivot_root_rootless(kernel, rootless):
    tree = FileTree()
    tree.create_file("/bin/app", size=10)
    kernel.mount(rootless, mount_bind(tree, PROFILES["nvme"]), "/newroot")
    kernel.pivot_root(rootless, "/newroot")
    assert rootless.root == "/newroot"


def test_pivot_root_requires_mount_point(kernel, rootless):
    with pytest.raises(EINVAL, match="mount point"):
        kernel.pivot_root(rootless, "/not-mounted")


def test_pivot_root_denied_without_userns(kernel):
    plain = kernel.spawn(uid=1000)
    with pytest.raises(EPERM):
        kernel.pivot_root(plain, "/anything")


def test_chroot_requires_cap(kernel):
    plain = kernel.spawn(uid=1000)
    with pytest.raises(EPERM):
        kernel.chroot(plain, "/jail")
    kernel.chroot(kernel.init, "/jail")
    assert kernel.init.root == "/jail"


# -- setuid ---------------------------------------------------------------------------

def test_setuid_denied_by_hardened_policy():
    kernel = Kernel(KernelConfig.hardened())
    from repro.fs.inode import FileNode

    user = kernel.spawn(uid=1000)
    helper = FileNode(size=1, uid=0, mode=0o4755)
    with pytest.raises(EPERM, match="site policy"):
        kernel.exec_setuid(user, helper, argv=("helper",))


def test_setuid_ignored_outside_initial_userns(kernel, rootless):
    from repro.fs.inode import FileNode

    helper = FileNode(size=1, uid=0, mode=0o4755)
    with pytest.raises(EPERM, match="initial user namespace"):
        kernel.exec_setuid(rootless, helper, argv=("helper",))


def test_exec_non_setuid_binary_rejected(kernel):
    from repro.fs.inode import FileNode

    user = kernel.spawn(uid=1000)
    plain = FileNode(size=1, uid=0, mode=0o755)
    with pytest.raises(EINVAL):
        kernel.exec_setuid(user, plain, argv=("x",))


# -- ptrace ----------------------------------------------------------------------------

def test_ptrace_same_uid_allowed(kernel):
    a = kernel.spawn(uid=1000)
    b = kernel.spawn(uid=1000)
    kernel.ptrace_attach(a, b)
    assert b.ptraced_by == a.pid


def test_ptrace_cross_uid_denied(kernel):
    a = kernel.spawn(uid=1000)
    b = kernel.spawn(uid=2000)
    with pytest.raises(EPERM):
        kernel.ptrace_attach(a, b)
    kernel.ptrace_attach(kernel.init, b)  # root may


# -- devices ----------------------------------------------------------------------------

def test_expose_device_requires_grant(kernel, rootless):
    kernel.host_devices.add("nvidia0")
    with pytest.raises(EPERM):
        kernel.expose_device(rootless, "nvidia0")
    kernel.grant_device(rootless, "nvidia0")
    kernel.expose_device(rootless, "nvidia0")
    assert "nvidia0" in rootless.exposed_devices


def test_expose_missing_device(kernel):
    with pytest.raises(ENOENT):
        kernel.expose_device(kernel.init, "nvidia0")
