"""Tests for user namespaces, uid maps, and capability scoping."""

import pytest

from repro.kernel import (
    Capability,
    EINVAL,
    EPERM,
    IdMapping,
    Kernel,
    KernelConfig,
    NamespaceKind,
    UserNamespace,
)


@pytest.fixture
def kernel():
    return Kernel(KernelConfig.modern_hpc())


@pytest.fixture
def user_proc(kernel):
    return kernel.spawn(uid=1000)


def test_initial_userns_identity_maps(kernel):
    assert kernel.initial_userns.uid_to_host(1234) == 1234
    assert kernel.initial_userns.is_initial


def test_spawn_inherits_namespaces_and_creds(kernel, user_proc):
    child = kernel.spawn(parent=user_proc)
    assert child.creds.uid == 1000
    assert child.userns is user_proc.userns
    assert child.mount_table is user_proc.mount_table


def test_spawn_uid_switch_requires_setuid(kernel, user_proc):
    with pytest.raises(EPERM):
        kernel.spawn(parent=user_proc, uid=0)
    # root can switch uid freely
    other = kernel.spawn(parent=kernel.init, uid=4321)
    assert other.creds.uid == 4321


def test_unshare_user_grants_full_caps_inside(kernel, user_proc):
    assert not user_proc.creds.has(Capability.SYS_ADMIN)
    kernel.unshare(user_proc, [NamespaceKind.USER])
    assert user_proc.creds.has(Capability.SYS_ADMIN)
    assert not user_proc.in_initial_userns
    assert user_proc.userns.creator_uid == 1000


def test_unshare_user_denied_when_sysctl_off():
    kernel = Kernel(KernelConfig.legacy_hpc())
    proc = kernel.spawn(uid=1000)
    with pytest.raises(EPERM, match="unprivileged user namespaces"):
        kernel.unshare(proc, [NamespaceKind.USER])
    # root can still unshare
    kernel.unshare(kernel.init, [NamespaceKind.USER])


def test_userns_count_limit():
    kernel = Kernel(KernelConfig(max_user_namespaces=2))
    p1 = kernel.spawn(uid=1000)
    kernel.unshare(p1, [NamespaceKind.USER])
    p2 = kernel.spawn(uid=1001)
    with pytest.raises(EPERM, match="max_user_namespaces"):
        kernel.unshare(p2, [NamespaceKind.USER])


def test_capability_does_not_extend_to_parent_ns(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    # Full caps inside own namespace, none towards the initial one.
    assert kernel.has_capability(user_proc, Capability.SYS_ADMIN)
    assert not kernel.has_capability(user_proc, Capability.SYS_ADMIN, kernel.initial_userns)


def test_root_capability_reaches_child_namespaces(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    assert kernel.has_capability(kernel.init, Capability.SYS_ADMIN, user_proc.userns)


def test_unprivileged_uid_map_single_own_uid(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    ns = user_proc.userns
    kernel.write_uid_map(ns, [IdMapping(inside=0, outside=1000)], writer=user_proc)
    assert ns.uid_to_parent(0) == 1000
    assert ns.uid_to_host(0) == 1000
    assert not ns.maps_multiple_uids()


def test_unprivileged_uid_map_cannot_map_other_uid(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    with pytest.raises(EPERM, match="own uid"):
        kernel.write_uid_map(user_proc.userns, [IdMapping(inside=0, outside=0)], writer=user_proc)


def test_unprivileged_uid_map_cannot_map_range(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    with pytest.raises(EPERM, match="exactly one id"):
        kernel.write_uid_map(
            user_proc.userns,
            [IdMapping(inside=0, outside=100000, count=65536)],
            writer=user_proc,
        )


def test_privileged_uid_map_range_via_newuidmap(kernel, user_proc):
    """The newuidmap setuid helper (CAP_SETUID in the parent ns) installs
    subuid ranges — the fakeroot feature of Apptainer/SingularityCE."""
    kernel.unshare(user_proc, [NamespaceKind.USER])
    helper = kernel.spawn(parent=kernel.init)  # root helper
    kernel.write_uid_map(
        user_proc.userns,
        [IdMapping(inside=0, outside=1000), IdMapping(inside=1, outside=100000, count=65536)],
        writer=helper,
    )
    assert user_proc.userns.maps_multiple_uids()
    assert user_proc.userns.uid_to_parent(5) == 100004


def test_uid_map_double_write_rejected(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    kernel.write_uid_map(user_proc.userns, [IdMapping(0, 1000)], writer=user_proc)
    with pytest.raises(EINVAL):
        kernel.write_uid_map(user_proc.userns, [IdMapping(0, 1000)], writer=user_proc)


def test_nested_userns_uid_to_host(kernel, user_proc):
    kernel.unshare(user_proc, [NamespaceKind.USER])
    kernel.write_uid_map(user_proc.userns, [IdMapping(0, 1000)], writer=user_proc)
    inner = kernel.spawn(parent=user_proc)
    kernel.unshare(inner, [NamespaceKind.USER])
    kernel.write_uid_map(inner.userns, [IdMapping(0, 0)], writer=inner)
    assert inner.userns.uid_to_host(0) == 1000


def test_userns_nesting_depth_limit(kernel):
    ns = kernel.initial_userns
    for _ in range(32):
        ns = UserNamespace(parent=ns, creator_uid=0)
    with pytest.raises(EPERM, match="nesting"):
        UserNamespace(parent=ns, creator_uid=0)


def test_unshare_mnt_requires_sys_admin(kernel, user_proc):
    with pytest.raises(EPERM, match="CAP_SYS_ADMIN"):
        kernel.unshare(user_proc, [NamespaceKind.MNT])


def test_unshare_user_and_mnt_together(kernel, user_proc):
    """The classic rootless sequence: USER first supplies the capability
    the MNT unshare needs."""
    original_table = user_proc.mount_table
    kernel.unshare(user_proc, [NamespaceKind.USER, NamespaceKind.MNT])
    assert user_proc.mount_table is not original_table
    assert user_proc.ns(NamespaceKind.MNT).owner is user_proc.userns


def test_mount_table_cloned_on_mnt_unshare(kernel):
    from repro.fs import FileTree, PROFILES
    from repro.fs.drivers import mount_bind

    host_view = mount_bind(FileTree(), PROFILES["nvme"])
    kernel.mount(kernel.init, host_view, "/")
    proc = kernel.spawn(uid=1000)
    kernel.unshare(proc, [NamespaceKind.USER, NamespaceKind.MNT])
    tree = FileTree()
    tree.create_file("/inner", size=1)
    view = mount_bind(tree, PROFILES["nvme"])
    kernel.mount(proc, view, "/mnt/ctr")
    assert proc.mount_table.is_mount_point("/mnt/ctr")
    assert not kernel.init.mount_table.is_mount_point("/mnt/ctr")


def test_setns_requires_capability(kernel, user_proc):
    other = kernel.spawn(uid=2000)
    kernel.unshare(other, [NamespaceKind.USER, NamespaceKind.NET])
    net_ns = other.ns(NamespaceKind.NET)
    with pytest.raises(EPERM):
        kernel.setns(user_proc, net_ns)
    # root may join
    helper = kernel.spawn(parent=kernel.init)
    kernel.setns(helper, net_ns)
    assert helper.ns(NamespaceKind.NET) is net_ns


def test_id_mapping_validation():
    with pytest.raises(EINVAL):
        IdMapping(inside=0, outside=0, count=0)
    m = IdMapping(inside=0, outside=100000, count=10)
    assert m.to_parent(3) == 100003
    assert m.to_parent(10) is None
    assert m.from_parent(100009) == 9
    assert m.from_parent(99999) is None
