"""Tests for the ns_capable owner rule and setns capability grants."""

import pytest

from repro.kernel import (
    Capability,
    EPERM,
    IdMapping,
    Kernel,
    KernelConfig,
    NamespaceKind,
)


@pytest.fixture
def kernel():
    return Kernel(KernelConfig.modern_hpc())


def test_owner_has_caps_towards_own_namespace_from_outside(kernel):
    """A second process of the same user holds capabilities towards a
    userns that user created (the nsenter-your-own-container rule)."""
    creator = kernel.spawn(uid=1000)
    kernel.unshare(creator, [NamespaceKind.USER])
    other = kernel.spawn(uid=1000)
    assert kernel.has_capability(other, Capability.SYS_ADMIN, creator.userns)
    stranger = kernel.spawn(uid=2000)
    assert not kernel.has_capability(stranger, Capability.SYS_ADMIN, creator.userns)


def test_owner_rule_never_applies_to_initial_ns(kernel):
    user = kernel.spawn(uid=1000)
    assert not kernel.has_capability(user, Capability.SYS_ADMIN, kernel.initial_userns)


def test_setns_into_userns_grants_full_caps(kernel):
    creator = kernel.spawn(uid=1000)
    kernel.unshare(creator, [NamespaceKind.USER, NamespaceKind.MNT])
    kernel.write_uid_map(creator.userns, [IdMapping(0, 1000)], writer=creator)
    joiner = kernel.spawn(uid=1000)
    assert not joiner.creds.has(Capability.SYS_ADMIN)
    kernel.setns(joiner, creator.userns)
    assert joiner.creds.has(Capability.SYS_ADMIN)
    # and may now join the sibling mount namespace
    kernel.setns(joiner, creator.ns(NamespaceKind.MNT))
    assert joiner.ns(NamespaceKind.MNT) is creator.ns(NamespaceKind.MNT)


def test_descendant_cannot_reach_sibling_namespace(kernel):
    a = kernel.spawn(uid=1000)
    kernel.unshare(a, [NamespaceKind.USER])
    b = kernel.spawn(uid=1000)
    kernel.unshare(b, [NamespaceKind.USER])
    # b's userns is a sibling, not an ancestor, of a's: no capability,
    # even with the same uid (b's euid matches but b is not an ancestor)
    assert not b.userns.is_ancestor_of(a.userns)
    # ...but a same-uid process still in the initial ns can reach both
    c = kernel.spawn(uid=1000)
    assert kernel.has_capability(c, Capability.SYS_ADMIN, a.userns)
    assert kernel.has_capability(c, Capability.SYS_ADMIN, b.userns)
