"""Shared fixtures: the tracer and registry are process-global, so every
test must leave them disabled and empty."""

import pytest

from repro.obs import metrics, timeseries, trace
from repro.sim import profile


@pytest.fixture(autouse=True)
def _obs_off_after():
    yield
    trace.disable()
    trace.reset()
    metrics.registry.enabled = False
    metrics.reset()
    timeseries.disable()
    timeseries.reset()
    # Tests may enable via metrics.enable() (which arms profile too);
    # drain any leftover nesting depth so the next test starts balanced.
    while profile.enable_depth() > 0:
        profile.disable()
    profile.counters.reset()
