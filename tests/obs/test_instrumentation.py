"""Instrumentation points across the stack feed the tracer/registry —
and change nothing about simulated behaviour when enabled or disabled."""

import pytest

from repro.cluster import HostNode
from repro.engines import DockerEngine, PodmanEngine, SarusEngine
from repro.kernel import KernelConfig
from repro.obs import metrics, trace
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry


@pytest.fixture
def registry():
    reg = OCIDistributionRegistry(name="site-registry")
    img = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app 5000000\nENTRYPOINT /opt/app"
    )
    reg.push_image("hpc/app", "v1", img)
    return reg


def _node():
    return HostNode(name="nid0001", kernel_config=KernelConfig.modern_hpc())


def test_engine_pull_and_run_emit_spans_and_metrics(registry):
    trace.enable()
    metrics.enable()
    node = _node()
    engine = SarusEngine(node)
    user = node.kernel.spawn(uid=1000)
    pulled = engine.pull("hpc/app", "v1", registry)
    result = engine.run(pulled, user)
    metrics.disable()
    trace.disable()

    names = [name for _ph, name, *_ in trace.tracer.events]
    assert "registry.pull" in names  # the registry side of the pull
    assert "engine.pull" in names
    assert "engine.run" in names
    phases = [n for n in names if n.startswith("engine.phase.")]
    assert phases, "per-phase slices should be replayed from timings"
    # phase slices tile the run span: their durations sum to the total
    phase_total = sum(
        dur for _ph, name, _ts, _tid, _args, dur in trace.tracer.events
        if name.startswith("engine.phase.")
    )
    assert phase_total == pytest.approx(result.startup_seconds)

    reg = metrics.registry
    assert reg.get_counter("engine.pulls", engine="sarus") == 1
    assert reg.get_counter("engine.runs", engine="sarus") == 1
    hist = reg.get_histogram("engine.startup_seconds", engine="sarus")
    assert hist is not None and hist.count == 1
    assert reg.get_counter("registry.pulls", registry="site-registry") == 1
    assert reg.get_counter("registry.bytes", registry="site-registry", op="pull") > 0


def test_engine_run_identical_with_and_without_obs(registry):
    node_a, node_b = _node(), _node()
    user_a = node_a.kernel.spawn(uid=1000)
    user_b = node_b.kernel.spawn(uid=1000)
    engine_a, engine_b = SarusEngine(node_a), SarusEngine(node_b)

    plain = engine_a.run(engine_a.pull("hpc/app", "v1", registry), user_a)
    trace.enable()
    metrics.enable()
    traced = engine_b.run(engine_b.pull("hpc/app", "v1", registry), user_b)
    metrics.disable()
    trace.disable()
    assert traced.startup_seconds == plain.startup_seconds
    assert traced.timings == plain.timings


def test_disabled_mode_records_nothing(registry):
    node = _node()
    engine = SarusEngine(node)
    user = node.kernel.spawn(uid=1000)
    engine.run(engine.pull("hpc/app", "v1", registry), user)
    assert len(trace.tracer) == 0
    assert metrics.registry.snapshot(include_sim=False) == {}


def test_docker_daemon_reports_jitter_conmon_does_not(registry):
    """§3.2, made checkable: the per-machine root daemon consumes a
    nonzero steady-state core fraction; a per-container monitor spawned
    as the user consumes none."""
    metrics.enable()
    node_d = _node()
    docker = DockerEngine(node_d)
    docker.start_daemon()

    node_p = _node()
    podman = PodmanEngine(node_p)
    user = node_p.kernel.spawn(uid=1000)
    podman.run(podman.pull("hpc/app", "v1", registry), user)
    metrics.disable()

    reg = metrics.registry
    dockerd = reg.get_gauge("monitor.background_cpu_fraction", monitor="dockerd")
    conmon = reg.get_gauge("monitor.background_cpu_fraction", monitor="conmon")
    assert dockerd is not None and dockerd > 0
    assert conmon == 0.0
    assert reg.get_gauge("monitor.resident_memory_bytes", monitor="dockerd") > \
        reg.get_gauge("monitor.resident_memory_bytes", monitor="conmon")


def test_mount_events_carry_driver_labels(registry):
    trace.enable()
    metrics.enable()
    node = _node()
    engine = SarusEngine(node)
    user = node.kernel.spawn(uid=1000)
    engine.run(engine.pull("hpc/app", "v1", registry), user)
    metrics.disable()
    trace.disable()
    mounts = [
        args for _ph, name, _ts, _tid, args, _dur in trace.tracer.events
        if name == "fs.mount"
    ]
    assert mounts and all("driver" in a for a in mounts)
    assert any(metrics.registry.get_counter("fs.mounts", driver=d)
               for d in ("squashfs", "squashfuse", "bind", "overlay"))
