"""Labeled metrics registry (repro.obs.metrics) and the sim.profile
compatibility bridge."""

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_series,
)
from repro.sim import Environment, profile


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry()
    reg.inc("engine.pulls", engine="sarus")
    reg.set_gauge("monitor.background_cpu_fraction", 0.002)
    reg.observe("fs.io.latency", 0.5)
    assert reg.snapshot(include_sim=False) == {}


def test_counters_accumulate_per_label_set():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("fs.io.bytes", 100, driver="squashfuse", op="read")
    reg.inc("fs.io.bytes", 50, driver="squashfuse", op="read")
    reg.inc("fs.io.bytes", 7, driver="overlay", op="read")
    assert reg.get_counter("fs.io.bytes", driver="squashfuse", op="read") == 150
    assert reg.get_counter("fs.io.bytes", driver="overlay", op="read") == 7
    assert reg.get_counter("fs.io.bytes") == 0.0  # unlabeled is its own series


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("x", op="read", driver="bind")
    reg.inc("x", driver="bind", op="read")
    assert reg.get_counter("x", driver="bind", op="read") == 2


def test_format_series():
    assert format_series("engine.pulls", ()) == "engine.pulls"
    key = (("driver", "squashfuse"), ("op", "read"))
    assert format_series("fs.io.latency", key) == \
        'fs.io.latency{driver="squashfuse",op="read"}'


def test_gauges_overwrite():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.set_gauge("g", 1.0, node="n0")
    reg.set_gauge("g", 2.0, node="n0")
    assert reg.get_gauge("g", node="n0") == 2.0
    assert reg.get_gauge("g", node="n1") is None


def test_histogram_buckets_and_mean():
    h = Histogram((1.0, 10.0))
    for v in (0.5, 0.7, 5.0, 100.0):
        h.observe(v)
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.mean == (0.5 + 0.7 + 5.0 + 100.0) / 4


def test_histogram_bounds_fixed_per_metric_name():
    """First observation fixes the bounds; later label sets of the same
    metric share them, so snapshots merge bucket-compatibly."""
    reg = MetricsRegistry()
    reg.enabled = True
    reg.observe("lat", 0.5, buckets=(1.0, 2.0), op="read")
    reg.observe("lat", 0.5, buckets=(9.0, 99.0), op="write")  # ignored
    assert reg.get_histogram("lat", op="write").buckets == (1.0, 2.0)
    reg.observe("other", 0.5)
    assert reg.get_histogram("other").buckets == DEFAULT_LATENCY_BUCKETS


def test_snapshot_bridges_sim_profile_counters():
    metrics.enable()
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    metrics.disable()
    snap = metrics.registry.snapshot()
    assert snap["sim.events_processed"] > 0
    assert snap["sim.processes_spawned"] == 1
    assert "sim.events_processed" not in metrics.registry.snapshot(include_sim=False)


def test_enable_forwards_to_profile_nesting_safely():
    assert not profile.counters.enabled
    metrics.enable()
    assert profile.counters.enabled
    profile.enable(reset=False)  # a nested consumer
    metrics.disable()
    assert profile.counters.enabled  # inner consumer still holds it
    profile.disable()
    assert not profile.counters.enabled


def test_render_table_lists_all_series():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("engine.pulls", 3, engine="sarus")
    reg.set_gauge("monitor.background_cpu_fraction", 0.002, monitor="dockerd")
    reg.observe("fs.io.latency", 0.05, driver="bind", op="read")
    table = reg.render_table(include_sim=False)
    assert 'engine.pulls{engine="sarus"}' in table
    assert "3" in table
    assert "0.002" in table
    assert "n=1" in table


def test_series_prefix_filter():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("engine.pulls")
    reg.inc("fs.io.files")
    reg.observe("fs.io.latency", 0.1)
    assert reg.series("fs.") == ["fs.io.files", "fs.io.latency"]


# -- Histogram.quantile -------------------------------------------------------


def test_quantile_rejects_out_of_range():
    h = Histogram((1.0,))
    import pytest

    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.1)


def test_quantile_of_empty_histogram_is_zero():
    assert Histogram((1.0, 10.0)).quantile(0.5) == 0.0


def test_quantile_interpolates_within_the_bucket():
    h = Histogram((10.0,))
    for _ in range(4):
        h.observe(5.0)
    # rank 2 of 4 in the (0, 10] bucket -> halfway through it
    assert h.quantile(0.5) == 5.0
    assert h.quantile(0.25) == 2.5
    assert h.quantile(1.0) == 10.0


def test_quantile_walks_cumulative_buckets():
    h = Histogram((1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        h.observe(v)
    # counts: [1, 2, 1, 0]; p50 rank=2 lands in the (1, 2] bucket
    assert h.quantile(0.5) == 1.5
    assert h.quantile(0.99) > 2.0


def test_quantile_overflow_clamps_to_highest_finite_bound():
    h = Histogram((1.0, 10.0))
    for _ in range(10):
        h.observe(1e9)  # everything in +inf
    assert h.quantile(0.99) == 10.0


def test_quantile_is_monotone_in_q():
    h = Histogram((0.1, 0.5, 1.0, 5.0))
    for v in (0.05, 0.3, 0.3, 0.8, 2.0, 9.0):
        h.observe(v)
    qs = [h.quantile(q / 20) for q in range(21)]
    assert qs == sorted(qs)


# -- install_state(merge=True) edge cases (the shard-merge contract) ----------


def _reg_with(counter=0.0, gauge=None, obs=()):
    reg = MetricsRegistry()
    reg.enabled = True
    if counter:
        reg.inc("c", counter, tenant="a")
    if gauge is not None:
        reg.set_gauge("g", gauge, shard="s0")
    for v in obs:
        reg.observe("h", v, buckets=(1.0, 10.0))
    return reg


def test_merge_adds_counters_and_histogram_buckets():
    target = MetricsRegistry()
    target.install_state(_reg_with(counter=3, obs=(0.5,)).capture_state())
    target.install_state(
        _reg_with(counter=4, obs=(5.0, 50.0)).capture_state(), merge=True
    )
    assert target.get_counter("c", tenant="a") == 7
    hist = target.get_histogram("h")
    assert hist.counts == [1, 1, 1]
    assert hist.count == 3
    assert hist.total == 55.5


def test_merge_gauge_conflict_last_writer_wins():
    target = MetricsRegistry()
    target.install_state(_reg_with(gauge=1.0).capture_state())
    target.install_state(_reg_with(gauge=9.0).capture_state(), merge=True)
    assert target.get_gauge("g", shard="s0") == 9.0


def test_merge_rejects_mismatched_histogram_buckets():
    import pytest

    a = MetricsRegistry()
    a.enabled = True
    a.observe("h", 0.5, buckets=(1.0, 2.0))
    b = MetricsRegistry()
    b.enabled = True
    b.observe("h", 0.5, buckets=(7.0, 8.0))
    target = MetricsRegistry()
    target.install_state(a.capture_state())
    with pytest.raises(ValueError):
        target.install_state(b.capture_state(), merge=True)


def test_interned_series_keys_survive_capture_install():
    """series_key() identities are the storage keys, so an interned key
    minted before a capture/install round-trip still addresses the same
    series afterwards."""
    reg = MetricsRegistry()
    reg.enabled = True
    key = reg.series_key("fleet.starts", tenant="t00001")
    reg.inc_series(key, 5)
    blob = reg.capture_state()
    fresh = MetricsRegistry()
    fresh.enabled = True
    fresh.install_state(blob)
    fresh.inc_series(key, 2)
    assert fresh.get_counter("fleet.starts", tenant="t00001") == 7
    assert key in fresh._counters


def test_merge_property_counter_sums_match_any_split():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=50, deadline=None)
    @given(
        shards=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["a", "b", "c"]),
                    # integer-valued so sums are exact under any grouping
                    st.integers(0, 10**6).map(float),
                ),
                max_size=6,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def run(shards):
        merged = MetricsRegistry()
        merged.install_state(MetricsRegistry().capture_state())
        totals = {}
        last_gauge = None
        for incs in shards:
            cell = MetricsRegistry()
            cell.enabled = True
            for tenant, v in incs:
                cell.inc("starts", v, tenant=tenant)
                totals[tenant] = totals.get(tenant, 0.0) + v
                cell.set_gauge("last", v)
                last_gauge = v
            merged.install_state(cell.capture_state(), merge=True)
        for tenant, total in totals.items():
            assert merged.get_counter("starts", tenant=tenant) == total
        if last_gauge is not None:
            assert merged.get_gauge("last") == last_gauge

    run()
