"""Labeled metrics registry (repro.obs.metrics) and the sim.profile
compatibility bridge."""

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_series,
)
from repro.sim import Environment, profile


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry()
    reg.inc("engine.pulls", engine="sarus")
    reg.set_gauge("monitor.background_cpu_fraction", 0.002)
    reg.observe("fs.io.latency", 0.5)
    assert reg.snapshot(include_sim=False) == {}


def test_counters_accumulate_per_label_set():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("fs.io.bytes", 100, driver="squashfuse", op="read")
    reg.inc("fs.io.bytes", 50, driver="squashfuse", op="read")
    reg.inc("fs.io.bytes", 7, driver="overlay", op="read")
    assert reg.get_counter("fs.io.bytes", driver="squashfuse", op="read") == 150
    assert reg.get_counter("fs.io.bytes", driver="overlay", op="read") == 7
    assert reg.get_counter("fs.io.bytes") == 0.0  # unlabeled is its own series


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("x", op="read", driver="bind")
    reg.inc("x", driver="bind", op="read")
    assert reg.get_counter("x", driver="bind", op="read") == 2


def test_format_series():
    assert format_series("engine.pulls", ()) == "engine.pulls"
    key = (("driver", "squashfuse"), ("op", "read"))
    assert format_series("fs.io.latency", key) == \
        'fs.io.latency{driver="squashfuse",op="read"}'


def test_gauges_overwrite():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.set_gauge("g", 1.0, node="n0")
    reg.set_gauge("g", 2.0, node="n0")
    assert reg.get_gauge("g", node="n0") == 2.0
    assert reg.get_gauge("g", node="n1") is None


def test_histogram_buckets_and_mean():
    h = Histogram((1.0, 10.0))
    for v in (0.5, 0.7, 5.0, 100.0):
        h.observe(v)
    assert h.counts == [2, 1, 1]
    assert h.count == 4
    assert h.mean == (0.5 + 0.7 + 5.0 + 100.0) / 4


def test_histogram_bounds_fixed_per_metric_name():
    """First observation fixes the bounds; later label sets of the same
    metric share them, so snapshots merge bucket-compatibly."""
    reg = MetricsRegistry()
    reg.enabled = True
    reg.observe("lat", 0.5, buckets=(1.0, 2.0), op="read")
    reg.observe("lat", 0.5, buckets=(9.0, 99.0), op="write")  # ignored
    assert reg.get_histogram("lat", op="write").buckets == (1.0, 2.0)
    reg.observe("other", 0.5)
    assert reg.get_histogram("other").buckets == DEFAULT_LATENCY_BUCKETS


def test_snapshot_bridges_sim_profile_counters():
    metrics.enable()
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    metrics.disable()
    snap = metrics.registry.snapshot()
    assert snap["sim.events_processed"] > 0
    assert snap["sim.processes_spawned"] == 1
    assert "sim.events_processed" not in metrics.registry.snapshot(include_sim=False)


def test_enable_forwards_to_profile_nesting_safely():
    assert not profile.counters.enabled
    metrics.enable()
    assert profile.counters.enabled
    profile.enable(reset=False)  # a nested consumer
    metrics.disable()
    assert profile.counters.enabled  # inner consumer still holds it
    profile.disable()
    assert not profile.counters.enabled


def test_render_table_lists_all_series():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("engine.pulls", 3, engine="sarus")
    reg.set_gauge("monitor.background_cpu_fraction", 0.002, monitor="dockerd")
    reg.observe("fs.io.latency", 0.05, driver="bind", op="read")
    table = reg.render_table(include_sim=False)
    assert 'engine.pulls{engine="sarus"}' in table
    assert "3" in table
    assert "0.002" in table
    assert "n=1" in table


def test_series_prefix_filter():
    reg = MetricsRegistry()
    reg.enabled = True
    reg.inc("engine.pulls")
    reg.inc("fs.io.files")
    reg.observe("fs.io.latency", 0.1)
    assert reg.series("fs.") == ["fs.io.files", "fs.io.latency"]
