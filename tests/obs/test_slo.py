"""SLO rule engine (repro.obs.slo): selectors, rule JSON, the state
machine, ratio/burn-rate math, detection latency, and the scorecard."""

import json

import pytest

from repro.obs.slo import (
    AlertEvent,
    ScorecardReport,
    SloRule,
    SloRuleSet,
    default_chaos_rules,
    detection_latencies,
    evaluate,
    parse_selector,
)
from repro.obs.timeseries import TimeSeriesRecorder


def _rec(interval=5.0) -> TimeSeriesRecorder:
    return TimeSeriesRecorder().enable(interval=interval)


# -- selectors ----------------------------------------------------------------


def test_parse_selector_bare_name():
    assert parse_selector("retry.attempts.rate") == ("retry.attempts.rate", ())


def test_parse_selector_labels_sorted_and_quotes_stripped():
    name, labels = parse_selector('x{b="2", a=1}')
    assert name == "x"
    assert labels == (("a", "1"), ("b", "2"))


def test_parse_selector_empty_block_matches_all():
    assert parse_selector("x{}") == ("x", ())


def test_parse_selector_rejects_garbage():
    with pytest.raises(ValueError):
        parse_selector("x{a=1")
    with pytest.raises(ValueError):
        parse_selector("x{nonsense}")


# -- rules and rule sets ------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError):
        SloRule(name="r", kind="bogus")
    with pytest.raises(ValueError):
        SloRule(name="r", series="s", op=">=")
    with pytest.raises(ValueError):
        SloRule(name="r")  # threshold without a series
    with pytest.raises(ValueError):
        SloRule(name="r", kind="error_ratio", numerator="n")  # no denominator
    with pytest.raises(ValueError):
        SloRule(name="r", kind="burn_rate", numerator="n", denominator="d",
                objective=1.0)


def test_ruleset_rejects_duplicate_names():
    rule = SloRule(name="same", series="s")
    with pytest.raises(ValueError):
        SloRuleSet([rule, SloRule(name="same", series="t")])


def test_ruleset_json_roundtrip():
    original = default_chaos_rules()
    parsed = SloRuleSet.from_json(original.to_json())
    assert parsed.name == original.name
    assert list(parsed) == list(original)
    assert parsed.to_json() == original.to_json()


def test_ruleset_accepts_bare_rule_list():
    rules = SloRuleSet.from_json('[{"name": "r", "series": "s", "value": 1.5}]')
    assert len(rules) == 1
    assert rules.rules[0].value == 1.5


def test_ruleset_file_roundtrip(tmp_path):
    path = tmp_path / "rules.json"
    default_chaos_rules().to_file(str(path))
    assert SloRuleSet.from_file(str(path)).to_json() == default_chaos_rules().to_json()


# -- the state machine --------------------------------------------------------


def _threshold(name="r", **kw) -> SloRuleSet:
    return SloRuleSet([SloRule(name=name, series="s", **kw)])


def test_threshold_fires_and_resolves():
    rec = _rec()
    for t, v in [(5.0, 0.0), (10.0, 3.0), (15.0, 3.0), (20.0, 0.0)]:
        rec.record("s", t, v)
    ev = evaluate(_threshold(value=1.0), rec, 20.0)
    assert [(a.state, a.at) for a in ev.alerts] == [("fire", 10.0), ("resolve", 20.0)]
    (b,) = ev.breaches
    assert (b.start, b.end) == (10.0, 20.0)
    assert b.duration(20.0) == 10.0


def test_threshold_still_firing_at_run_end_leaves_open_breach():
    rec = _rec()
    rec.record("s", 5.0, 9.0)
    ev = evaluate(_threshold(value=1.0), rec, 30.0)
    assert ev.fires == 1
    (b,) = ev.breaches
    assert b.end is None
    assert b.duration(30.0) == 25.0


def test_for_s_holds_the_alert_until_condition_persists():
    rec = _rec()
    # breach at 5 clears at 10 — shorter than for_s, never fires
    for t, v in [(5.0, 9.0), (10.0, 0.0), (15.0, 9.0), (20.0, 9.0), (25.0, 9.0)]:
        rec.record("s", t, v)
    ev = evaluate(_threshold(value=1.0, for_s=10.0), rec, 25.0)
    assert [(a.state, a.at) for a in ev.alerts] == [("fire", 25.0)]


def test_less_than_op():
    rec = _rec()
    for t, v in [(5.0, 10.0), (10.0, 0.5)]:
        rec.record("s", t, v)
    ev = evaluate(_threshold(op="<", value=1.0), rec, 10.0)
    assert [(a.state, a.at) for a in ev.alerts] == [("fire", 10.0)]


def test_threshold_fans_out_per_matching_series():
    rec = _rec()
    rec.record("s", 5.0, 9.0, node="n0")
    rec.record("s", 5.0, 9.0, node="n1")
    ev = evaluate(_threshold(value=1.0), rec, 5.0)
    assert ev.fires == 2
    assert sorted(a.series for a in ev.alerts) == ['s{node="n0"}', 's{node="n1"}']


def test_alerts_sorted_independent_of_rule_order():
    rec = _rec()
    rec.record("s", 5.0, 9.0)
    rec.record("u", 5.0, 9.0)
    a = SloRule(name="a", series="u", value=1.0)
    b = SloRule(name="b", series="s", value=1.0)
    ev1 = evaluate(SloRuleSet([a, b]), rec, 5.0)
    ev2 = evaluate(SloRuleSet([b, a]), rec, 5.0)
    assert ev1.alerts == ev2.alerts


# -- ratio and burn-rate rules ------------------------------------------------


def _ratio_recorder() -> TimeSeriesRecorder:
    """failed ticks 2/tick from t=10; started 10/tick throughout."""
    rec = _rec()
    for t in (5.0, 10.0, 15.0):
        rec.record("started.rate", t, 2.0)  # 10 per 5s tick
    rec.record("failed.rate", 10.0, 0.4)  # 2 per tick
    rec.record("failed.rate", 15.0, 0.4)
    return rec


def test_error_ratio_windows_increments():
    rules = SloRuleSet([
        SloRule(name="ratio", kind="error_ratio", numerator="failed",
                denominator="started", value=0.1, window_s=300.0)
    ])
    ev = evaluate(rules, _ratio_recorder(), 15.0)
    # window ratios: 0/10, 2/20, 4/30 -> first exceeds 0.1 at t=15
    assert [(a.state, a.at) for a in ev.alerts] == [("fire", 15.0)]


def test_burn_rate_scales_by_error_budget():
    rules = SloRuleSet([
        SloRule(name="burn", kind="burn_rate", numerator="failed",
                denominator="started", objective=0.9, value=1.2,
                window_s=300.0)
    ])
    ev = evaluate(rules, _ratio_recorder(), 15.0)
    # burn = ratio / (1 - 0.9): ~0, ~1.0, ~1.33 — only t=15 exceeds 1.2
    assert [(a.state, a.at) for a in ev.alerts] == [("fire", 15.0)]


def test_ratio_with_zero_denominator_is_zero():
    rec = _rec()
    rec.record("failed.rate", 5.0, 1.0)
    rules = SloRuleSet([
        SloRule(name="ratio", kind="error_ratio", numerator="failed",
                denominator="started", value=0.0)
    ])
    assert evaluate(rules, rec, 5.0).fires == 0


# -- detection latency --------------------------------------------------------


def _ev(*fires: float):
    alerts = [AlertEvent("r", "s", "fire", t, 1.0) for t in fires]
    return evaluate(SloRuleSet([]), _rec(), 0.0).__class__(
        alerts=alerts, breaches=[], end_time=100.0
    )


def test_detection_latency_first_fire_at_or_after_injection():
    ev = _ev(10.0, 30.0)
    out = detection_latencies({"node_crash": 7.0, "mds_degraded": 25.0}, ev)
    assert out == {"node_crash": 3.0, "mds_degraded": 5.0}


def test_detection_latency_none_when_never_detected():
    out = detection_latencies({"hook_failure": 50.0}, _ev(10.0))
    assert out == {"hook_failure": None}


def test_detection_latency_zero_fault_set():
    assert detection_latencies({}, _ev(10.0)) == {}


# -- scorecard ----------------------------------------------------------------


def _scorecard() -> ScorecardReport:
    rec = _rec()
    rec.record("s", 5.0, 9.0, node="n0")
    rec.record("s", 10.0, 0.0, node="n0")
    rules = _threshold(value=1.0)
    ev = evaluate(rules, rec, 10.0)
    return ScorecardReport.build(
        scenario="unit", ruleset=rules, evaluation=ev, rec=rec,
        seed=3, detection={"node_crash": 2.5},
    )


def test_scorecard_document_shape_and_determinism():
    card = _scorecard()
    doc = card.to_dict()
    assert doc["schema"] == "repro-slo-scorecard/1"
    assert doc["scenario"] == "unit"
    (row,) = doc["rules"]
    assert row["rule"] == "r" and row["fires"] == 1 and row["breach_s"] == 5.0
    (entity,) = doc["entities"]
    assert entity["label"] == "node" and entity["entity"] == "n0"
    assert 0.0 <= entity["health"] <= 1.0
    assert doc["detection"] == {"node_crash": 2.5}
    assert card.to_json() == _scorecard().to_json()
    assert json.loads(card.to_json())["schema"] == "repro-slo-scorecard/1"


def test_scorecard_render_lists_rules_and_detection():
    text = _scorecard().render()
    assert "SLO scorecard: unit" in text
    assert "r " in text or "r\n" in text or " r" in text
    assert "node_crash" in text and "2.5s" in text
