"""Virtual-time time-series recorder (repro.obs.timeseries)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder, install_sampler, recorder
from repro.sim import Environment


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.enabled = True
    return reg


def test_disabled_recorder_is_inert():
    rec = TimeSeriesRecorder()
    assert not rec.due(1e9)
    assert rec.sample_due(1e9, _registry()) is None
    assert rec.snapshot() == {}
    assert rec.samples == 0


def test_enable_rejects_nonpositive_interval():
    rec = TimeSeriesRecorder()
    with pytest.raises(ValueError):
        rec.enable(interval=0.0)
    with pytest.raises(ValueError):
        rec.enable(interval=-1.0)


def test_samples_stamp_on_the_grid():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    assert rec.sample(12.3) == 10.0
    assert rec._next_due == 15.0
    assert not rec.due(14.999)
    assert rec.due(15.0)


def test_counter_rate_appears_only_once_the_counter_moves():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    reg = _registry()
    reg.inc("flat.counter", 0)  # present but never moves from zero
    rec.sample(5.0, reg)
    assert rec.points("flat.counter.rate") == []
    reg.inc("flat.counter", 10)
    rec.sample(10.0, reg)
    assert rec.points("flat.counter.rate") == [(10.0, 2.0)]  # 10 over 5s
    # flat *after* appearing keeps recording 0.0 (so ">0" alerts resolve)
    rec.sample(15.0, reg)
    assert rec.points("flat.counter.rate")[-1] == (15.0, 0.0)


def test_counter_rate_uses_the_actual_tick_gap():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    reg = _registry()
    reg.inc("c", 5)
    rec.sample(5.0, reg)
    reg.inc("c", 30)
    rec.sample(20.0, reg)  # skipped two grid points; gap = 15s
    assert rec.points("c.rate") == [(5.0, 1.0), (20.0, 2.0)]


def test_gauges_and_histogram_quantiles_are_sampled():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    reg = _registry()
    reg.set_gauge("depth", 7.0, node="n0")
    for v in (0.1, 0.2, 0.3, 0.4):
        reg.observe("lat", v, buckets=(0.25, 0.5, 1.0))
    rec.sample(5.0, reg)
    assert rec.points("depth", node="n0") == [(5.0, 7.0)]
    (t, p50), = rec.points("lat.p50")
    (_, p99), = rec.points("lat.p99")
    assert t == 5.0
    assert 0.0 < p50 <= p99 <= 1.0


def test_probes_run_with_grid_timestamp_and_reset_clears_them():
    rec = TimeSeriesRecorder().enable(interval=10.0)
    seen = []
    rec.add_probe(lambda t: seen.append(t))
    rec.sample(23.0)
    assert seen == [20.0]
    rec.reset()
    assert rec._probes == []


def test_match_is_a_label_subset_filter():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    rec.record("w", 5.0, 1.0, tenant="a", shard="s0")
    rec.record("w", 5.0, 2.0, tenant="b", shard="s0")
    rec.record("other", 5.0, 3.0, tenant="a")
    keys = rec.match("w", (("tenant", "a"),))
    assert [k[0] for k in keys] == ["w"]
    assert len(keys) == 1
    assert len(rec.match("w")) == 2
    assert rec.match("w", (("tenant", "zz"),)) == []


def test_ring_buffer_caps_points_per_series():
    rec = TimeSeriesRecorder().enable(interval=1.0, capacity=4)
    for i in range(10):
        rec.record("g", float(i), float(i))
    pts = rec.points("g")
    assert len(pts) == 4
    assert pts == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]


def test_document_and_json_are_deterministic():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    rec.record("b", 5.0, 1.0, node="n1")
    rec.record("a", 5.0, 2.0)
    doc = rec.document()
    assert doc["schema"] == "repro-timeseries/1"
    assert list(doc["series"]) == ["a", 'b{node="n1"}']
    assert rec.to_json() == rec.to_json()


def test_openmetrics_exposes_latest_point_with_timestamp():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    rec.record("fleet.pending", 5.0, 3.0, shard="s0")
    rec.record("fleet.pending", 10.0, 4.0, shard="s0")
    text = rec.to_openmetrics()
    assert 'fleet_pending{shard="s0"} 4 10' in text
    assert text.endswith("# EOF\n")


def test_install_state_replaces_wholesale_without_merge():
    rec = TimeSeriesRecorder().enable(interval=2.0, capacity=128)
    rec.record("x", 2.0, 1.0)
    blob = rec.capture_state()
    other = TimeSeriesRecorder().enable(interval=9.0)
    other.record("y", 9.0, 5.0)
    other.install_state(blob)
    assert other.interval == 2.0
    assert other.capacity == 128
    assert other.points("x") == [(2.0, 1.0)]
    assert other.points("y") == []


def test_install_state_merge_appends_in_blob_order():
    a = TimeSeriesRecorder().enable(interval=5.0)
    a.record("w", 5.0, 1.0, shard="s0")
    a.sample(5.0)
    b = TimeSeriesRecorder().enable(interval=5.0)
    b.record("w", 5.0, 2.0, shard="s0")
    b.record("w", 5.0, 9.0, shard="s1")
    b.sample(5.0)
    merged = TimeSeriesRecorder()
    merged.install_state(a.capture_state())
    merged.install_state(b.capture_state(), merge=True)
    assert merged.points("w", shard="s0") == [(5.0, 1.0), (5.0, 2.0)]
    assert merged.points("w", shard="s1") == [(5.0, 9.0)]
    assert merged.samples == 2


def test_capture_state_leaves_rate_bookkeeping_and_probes_behind():
    rec = TimeSeriesRecorder().enable(interval=5.0)
    reg = _registry()
    reg.inc("c", 5)
    rec.add_probe(lambda t: None)
    rec.sample(5.0, reg)
    blob = rec.capture_state()
    assert "points" in blob and "samples" in blob
    assert not any(k.startswith("_last") for k in blob)
    fresh = TimeSeriesRecorder()
    fresh.install_state(blob)
    assert fresh._probes == []
    assert fresh._last_counters == {}


def test_install_sampler_ticks_and_self_terminates():
    rec = recorder
    rec.enable(interval=5.0)
    env = Environment()
    reg = _registry()

    def work():
        reg.inc("busy", 1)
        yield env.timeout(12.0)
        reg.inc("busy", 1)

    env.process(work())
    install_sampler(env, reg)
    env.run()  # terminates: the sampler exits once it is the only work
    assert rec.samples >= 2
    assert all(t % 5.0 == 0.0 for t, _ in rec.points("busy.rate"))


def test_install_sampler_is_a_noop_when_disabled():
    assert not recorder.enabled
    env = Environment()
    assert install_sampler(env, _registry()) is None
    env.run()  # empty queue; nothing was scheduled


@settings(max_examples=50, deadline=None)
@given(
    shards=st.lists(
        st.lists(
            st.tuples(
                st.floats(0.0, 100.0, allow_nan=False),
                st.floats(-1e6, 1e6, allow_nan=False),
            ),
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_merge_order_is_concatenation(shards):
    """Merging N captured recorders in order == recording every point
    into one recorder in the same order (the shard-runner contract)."""
    merged = TimeSeriesRecorder()
    merged.install_state(TimeSeriesRecorder().enable(interval=5.0).capture_state())
    direct = TimeSeriesRecorder().enable(interval=5.0)
    for pts in shards:
        cell = TimeSeriesRecorder().enable(interval=5.0)
        for t, v in pts:
            cell.record("s", t, v, shard="x")
            direct.record("s", t, v, shard="x")
        merged.install_state(cell.capture_state(), merge=True)
    assert merged.points("s", shard="x") == direct.points("s", shard="x")
