"""Determinism and stack-discipline guarantees of the whole-stack trace.

The paper-reproduction artifacts (benchmarks/out) are committed and CI
checks them byte-for-byte; the trace export must meet the same bar.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs import metrics, trace
from repro.obs.export import to_chrome_json, validate_chrome_trace
from repro.obs.trace import Tracer
from repro.scenarios.evaluate import run_scenario
from repro.scenarios.kubelet_in_allocation import KubeletInAllocationScenario
from repro.sim import Environment


def _trace_scenario() -> str:
    trace.enable()
    metrics.enable()
    try:
        run_scenario(KubeletInAllocationScenario, n_nodes=2, n_pods=3)
        return trace.export_json()
    finally:
        metrics.disable()
        trace.disable()
        trace.reset()


def test_scenario_trace_is_byte_identical_across_runs():
    one = _trace_scenario()
    two = _trace_scenario()
    assert one == two


def test_scenario_trace_is_valid_and_covers_four_subsystems():
    text = _trace_scenario()
    doc = json.loads(text)
    assert validate_chrome_trace(doc) == []
    cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] != "M"}
    # the acceptance bar: engine, fs, wlm/k8s, and registry all show up
    assert {"engine", "fs", "registry", "wlm", "k8s"} <= cats


def test_trace_contains_no_wall_clock_data_by_default():
    text = _trace_scenario()
    assert "wall_ms" not in text


# -- property: spans recorded by one simulated process never interleave
#    incorrectly, whatever the nesting/timeout pattern ---------------------

span_programs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # nesting depth of this span
        st.floats(min_value=0.0, max_value=5.0),  # timeout inside it
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(st.lists(span_programs, min_size=1, max_size=4))
def test_spans_never_overlap_incorrectly_within_a_process(programs):
    t = Tracer()
    t.enable()
    env = Environment()
    t.attach(env)

    def worker(env, program, who):
        for depth, delay in program:
            spans = [t.span(f"p{who}.d{k}") for k in range(depth + 1)]
            for s in spans:
                s.__enter__()
            yield env.timeout(delay)
            for s in reversed(spans):
                s.__exit__(None, None, None)

    for who, program in enumerate(programs):
        env.process(worker(env, program, who))
    env.run()
    assert validate_chrome_trace(to_chrome_json(t)) == []
