"""The virtual-time span tracer (repro.obs.trace)."""

import json

from repro.obs import trace
from repro.obs.export import to_chrome_json, to_events, validate_chrome_trace
from repro.obs.trace import MAIN_TID, Tracer
from repro.sim import Environment


def test_disabled_by_default_records_nothing():
    t = Tracer()
    with t.span("engine.run", engine="sarus"):
        pass
    t.complete("fs.load_all", 1.0)
    t.instant("wlm.job_start")
    assert len(t) == 0


def test_disabled_span_is_shared_null_object():
    t = Tracer()
    a = t.span("a")
    b = t.span("b")
    assert a is b  # one preallocated no-op: zero per-call cost when off


def test_span_records_balanced_b_e_with_virtual_time():
    t = Tracer()
    t.enable()
    env = Environment()
    t.attach(env)

    def proc(env):
        with t.span("engine.run", engine="sarus"):
            yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    (ph0, name0, ts0, tid0, args0, _), (ph1, name1, ts1, tid1, *_rest) = t.events
    assert (ph0, name0, ts0) == ("B", "engine.run", 0.0)
    assert (ph1, name1, ts1) == ("E", "engine.run", 2.5)
    assert tid0 == tid1 != MAIN_TID
    assert args0 == {"engine": "sarus"}


def test_spans_nest_per_process_across_interleaving():
    """Two processes interleave on the clock, but each process's spans
    stay properly nested on its own thread row."""
    t = Tracer()
    t.enable()
    env = Environment()
    t.attach(env)

    def worker(env, name, delay):
        with t.span(f"{name}.outer"):
            yield env.timeout(delay)
            with t.span(f"{name}.inner"):
                yield env.timeout(delay)

    env.process(worker(env, "a", 1.0))
    env.process(worker(env, "b", 1.5))
    env.run()
    doc = json.loads(to_chrome_json(t))
    assert validate_chrome_trace(doc) == []
    tids = {tid for ph, _n, _ts, tid, *_ in t.events if ph in "BE"}
    assert len(tids) == 2


def test_span_closes_on_exception():
    t = Tracer()
    t.enable()
    try:
        with t.span("engine.run"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [ph for ph, *_ in t.events] == ["B", "E"]


def test_complete_advances_synthetic_cursor_without_env():
    t = Tracer()
    t.enable()
    t.complete("engine.phase.pull", 3.0)
    t.complete("engine.phase.mount", 0.5)
    (_, _, ts0, _, _, dur0), (_, _, ts1, _, _, dur1) = t.events
    assert (ts0, dur0) == (0.0, 3.0)
    assert (ts1, dur1) == (3.0, 0.5)  # laid out sequentially, not stacked


def test_complete_uses_env_clock_when_attached():
    t = Tracer()
    t.enable()
    env = Environment()
    t.attach(env)

    def proc(env):
        yield env.timeout(7.0)
        t.complete("registry.pull", 1.25)

    env.process(proc(env))
    env.run()
    _ph, _name, ts, _tid, _args, dur = t.events[0]
    assert (ts, dur) == (7.0, 1.25)


def test_environment_attaches_itself_while_enabled():
    trace.enable()
    env = Environment()
    assert trace.tracer._env is env


def test_environment_does_not_attach_while_disabled():
    env = Environment()
    assert trace.tracer._env is not env


def test_tids_are_stable_and_named_after_processes():
    t = Tracer()
    t.enable()
    env = Environment()
    t.attach(env)

    def proc(env):
        t.instant("wlm.job_start")
        yield env.timeout(1)
        t.instant("wlm.job_end")

    env.process(proc(env), name="slurmctld")
    env.run()
    tid_a = t.events[0][3]
    tid_b = t.events[1][3]
    assert tid_a == tid_b
    assert t.thread_name(tid_a) == "slurmctld"


def test_categories_are_name_prefixes():
    t = Tracer()
    t.enable()
    t.instant("engine.pull")
    t.instant("fs.mds.batch")
    t.complete("wlm.schedule_pass", 0.1)
    assert t.categories() == {"engine", "fs", "wlm"}


def test_export_emits_metadata_and_sorted_microsecond_ts():
    t = Tracer()
    t.enable()
    t.complete("b.second", 1.0)  # synthetic cursor: starts at 0
    t.instant("a.first")  # lands at cursor == 1.0
    events = to_events(t)
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    data = [e for e in events if e["ph"] != "M"]
    assert [e["ts"] for e in data] == [0.0, 1e6]
    assert data[0]["dur"] == 1e6
    assert data[1]["s"] == "t"


def test_export_json_is_deterministic_and_valid():
    def build():
        t = Tracer()
        t.enable()
        env = Environment()
        t.attach(env)

        def proc(env):
            with t.span("engine.run", engine="podman"):
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        return to_chrome_json(t)

    one, two = build(), build()
    assert one == two
    assert validate_chrome_trace(one) == []


def test_module_singleton_roundtrip(tmp_path):
    trace.enable()
    with trace.span("engine.run"):
        pass
    out = tmp_path / "trace.json"
    text = trace.export_json(str(out))
    assert out.read_text() == text
    assert validate_chrome_trace(text) == []


def test_validator_rejects_malformed_traces():
    assert validate_chrome_trace("{not json") != []
    assert validate_chrome_trace({"nope": 1}) != []
    base = {"pid": 1, "tid": 1}
    unbalanced = {"traceEvents": [
        {"name": "x", "ph": "B", "ts": 0, **base},
    ]}
    assert any("unclosed" in p for p in validate_chrome_trace(unbalanced))
    mismatched = {"traceEvents": [
        {"name": "x", "ph": "B", "ts": 0, **base},
        {"name": "y", "ph": "E", "ts": 1, **base},
    ]}
    assert any("does not match" in p for p in validate_chrome_trace(mismatched))
    unsorted = {"traceEvents": [
        {"name": "x", "ph": "i", "ts": 5, **base},
        {"name": "y", "ph": "i", "ts": 1, **base},
    ]}
    assert any("unsorted" in p for p in validate_chrome_trace(unsorted))
    bad_x = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, **base}]}
    assert any("dur" in p for p in validate_chrome_trace(bad_x))


def test_wall_clock_args_only_when_opted_in():
    t = Tracer()
    t.enable()
    with t.span("engine.run"):
        pass
    assert t.events[1][4] is None  # E has no args by default
    t.enable(wall_clock=True)
    with t.span("engine.run"):
        pass
    assert "wall_ms" in t.events[1][4]
