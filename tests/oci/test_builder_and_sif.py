"""Tests for the Dockerfile/def builders, build cache, SIF, conversion."""

import pytest

from repro.fs import FileTree
from repro.oci import Builder, BuildError
from repro.oci.catalog import BaseImageCatalog
from repro.oci.shell import ShellError, run_commands
from repro.oci.squash import oci_to_squash
from repro.signing import KeyPair, SignatureError, generate_sbom


DOCKERFILE = """
FROM ubuntu:22.04
ENV APP_HOME=/opt/app
RUN mkdir -p /opt/app && write /opt/app/solver 5000000
RUN pip-install numpy 50
COPY input.dat /opt/app/input.dat
ENTRYPOINT /opt/app/solver
LABEL org.example.team=hpc
USER 1000
EXPOSE 8080
"""


@pytest.fixture
def builder():
    return Builder(BaseImageCatalog())


@pytest.fixture
def context():
    ctx = FileTree()
    ctx.create_file("/input.dat", data=b"parameters")
    return ctx


# -- the mini shell ---------------------------------------------------------------

def test_shell_commands():
    t = FileTree()
    run_commands(
        t,
        """
        mkdir -p /opt/app/bin
        write /opt/app/bin/solver 1000
        echo hello > /opt/app/README
        chmod 755 /opt/app/bin/solver
        ln -s /opt/app/bin/solver /usr/local/bin/solver
        """,
    )
    assert t.is_dir("/opt/app/bin")
    assert t.get("/opt/app/README").data == b"hello"
    assert t.get("/opt/app/bin/solver").mode == 0o755
    assert t.get("/usr/local/bin/solver").size == 1000  # through symlink


def test_shell_chaining_and_comments():
    t = FileTree()
    run_commands(t, "# comment\ntouch /a && touch /b")
    assert t.exists("/a") and t.exists("/b")


def test_shell_pip_install_many_small_files():
    t = FileTree()
    run_commands(t, "pip-install scipy 200")
    assert t.num_files("/usr/lib/python3.11/site-packages/scipy") == 200


def test_shell_unknown_command_leaves_marker():
    t = FileTree()
    run_commands(t, "apt-get update")
    assert t.num_files("/.build") == 1


def test_shell_errors():
    t = FileTree()
    with pytest.raises(ShellError):
        run_commands(t, "write /x")
    with pytest.raises(ShellError):
        run_commands(t, "compile /missing.c /out 100")


# -- Dockerfile builds ----------------------------------------------------------------

def test_build_dockerfile_layers_and_config(builder, context):
    img = builder.build_dockerfile(DOCKERFILE, context=context)
    # base(1) + 2 RUN + 1 COPY
    assert len(img.layers) == 4
    flat = img.flatten()
    assert flat.exists("/opt/app/solver")
    assert flat.exists("/opt/app/input.dat")
    assert flat.num_files("/usr/lib/python3.11/site-packages/numpy") == 50
    assert img.config.env["APP_HOME"] == "/opt/app"
    assert img.config.entrypoint == ("/opt/app/solver",)
    assert img.config.user == "1000"
    assert img.config.exposed_ports == (8080,)
    assert img.config.labels["org.example.team"] == "hpc"


def test_build_cache_hits_on_rebuild(builder, context):
    builder.build_dockerfile(DOCKERFILE, context=context)
    assert builder.last_build_stats["executed_steps"] == 3
    builder.build_dockerfile(DOCKERFILE, context=context)
    assert builder.last_build_stats["executed_steps"] == 0
    assert builder.last_build_stats["cached_steps"] == 3


def test_build_cache_invalidated_from_changed_step(builder, context):
    builder.build_dockerfile(DOCKERFILE, context=context)
    changed = DOCKERFILE.replace("pip-install numpy 50", "pip-install numpy 60")
    builder.build_dockerfile(changed, context=context)
    stats = builder.last_build_stats
    # first RUN cached; changed RUN and the COPY after it re-execute
    assert stats["cached_steps"] == 1
    assert stats["executed_steps"] == 2


def test_build_cache_context_change_invalidates_copy(builder, context):
    builder.build_dockerfile(DOCKERFILE, context=context)
    context2 = FileTree()
    context2.create_file("/input.dat", data=b"different")
    builder.build_dockerfile(DOCKERFILE, context=context2)
    assert builder.last_build_stats["executed_steps"] == 1  # only COPY


def test_identical_builds_share_digest(builder, context):
    a = builder.build_dockerfile(DOCKERFILE, context=context)
    b = builder.build_dockerfile(DOCKERFILE, context=context)
    assert a.digest == b.digest


def test_dockerfile_must_start_with_from(builder):
    with pytest.raises(BuildError, match="FROM"):
        builder.build_dockerfile("RUN touch /x")


def test_dockerfile_unknown_instruction(builder):
    with pytest.raises(BuildError, match="unknown instruction"):
        builder.build_dockerfile("FROM alpine\nBOGUS foo")


def test_copy_missing_source(builder):
    with pytest.raises(BuildError, match="not in build context"):
        builder.build_dockerfile("FROM alpine\nCOPY ghost.txt /x")


def test_unknown_base_image(builder):
    with pytest.raises(KeyError, match="unknown base image"):
        builder.build_dockerfile("FROM centos:7")


def test_catalog_profiles():
    catalog = BaseImageCatalog()
    python = catalog.get("python:3.11")
    mpi = catalog.get("mpi-solver")
    # interpreter stack: many small files; compiled stack: few large ones
    assert python.num_files > 10 * mpi.num_files
    assert mpi.uncompressed_size > python.uncompressed_size


# -- Singularity definition files ------------------------------------------------------

DEF_FILE = """
Bootstrap: docker
From: ubuntu:22.04

%post
    mkdir -p /opt/tool
    write /opt/tool/bin 2000000

%environment
    export OMP_NUM_THREADS=4

%labels
    MAINTAINER hpc-team

%runscript
    /opt/tool/bin
"""


def test_build_definition_flat_sif(builder):
    sif = builder.build_definition(DEF_FILE, build_uid=1000)
    assert sif.tree.exists("/opt/tool/bin")
    assert sif.config.env["OMP_NUM_THREADS"] == "4"
    assert sif.config.entrypoint == ("/opt/tool/bin",)
    assert sif.config.labels["MAINTAINER"] == "hpc-team"
    assert sif.built_by_uid == 1000
    assert sif.squash.is_user_manipulable(1000)  # user-built => not kernel-mountable


def test_definition_requires_from(builder):
    with pytest.raises(BuildError, match="From"):
        builder.build_definition("Bootstrap: docker\n%post\n    touch /x")


def test_definition_unknown_section(builder):
    with pytest.raises(BuildError, match="unknown section"):
        builder.build_definition("Bootstrap: docker\nFrom: alpine\n%bogus\n    x")


# -- SIF features ---------------------------------------------------------------------

def test_sif_sign_and_verify(builder):
    sif = builder.build_definition(DEF_FILE)
    key = KeyPair("alice")
    sif.sign(key)
    assert sif.verify(key)
    assert not sif.verify(KeyPair("mallory"))


def test_sif_encryption_lifecycle(builder):
    sif = builder.build_definition(DEF_FILE)
    key = KeyPair("site")
    sif.encrypt(key)
    with pytest.raises(SignatureError, match="encrypted"):
        sif.readable_tree()
    with pytest.raises(SignatureError, match="wrong"):
        sif.decrypt(KeyPair("other"))
    sif.decrypt(key)
    assert sif.readable_tree().exists("/opt/tool/bin")


def test_sif_overlay_partition(builder):
    sif = builder.build_definition(DEF_FILE)
    overlay = sif.add_overlay()
    overlay.create_file("/results/out.dat", size=1_000_000)
    from repro.oci.sif import SIFPartition

    assert SIFPartition.OVERLAY in sif.partitions()
    assert sif.file_size > sif.squash.compressed_size


# -- conversion & SBOM ---------------------------------------------------------------

def test_oci_to_squash_conversion(builder, context):
    img = builder.build_dockerfile(DOCKERFILE, context=context)
    squash, cost = oci_to_squash(img, built_by_uid=0)
    assert cost > 0
    assert squash.tree.exists("/opt/app/solver")
    assert squash.num_inner_files == img.num_files
    assert not squash.is_user_manipulable(1000)


def test_sbom_generation(builder, context):
    img = builder.build_dockerfile(DOCKERFILE, context=context)
    sbom = generate_sbom(img.flatten(), img.digest)
    numpy = sbom.find("numpy")
    assert numpy is not None and numpy.origin == "pip"
    assert sbom.digest.startswith("sha256:")
