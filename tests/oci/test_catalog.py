"""Tests for the base-image catalog."""

import pytest

from repro.oci.catalog import BaseImageCatalog
from repro.oci import Builder, ImageConfig, Layer, OCIImage
from repro.fs import FileTree


def test_known_names_and_caching():
    catalog = BaseImageCatalog()
    assert "ubuntu:22.04" in catalog.names()
    first = catalog.get("ubuntu")
    assert catalog.get("ubuntu") is first  # cached


def test_unknown_name_lists_known():
    with pytest.raises(KeyError, match="known"):
        BaseImageCatalog().get("fedora:39")


def test_register_custom_builder():
    catalog = BaseImageCatalog()

    def custom():
        t = FileTree()
        t.create_file("/site/base-marker", data=b"v1")
        return OCIImage(ImageConfig(), [Layer(t, created_by="site base")])

    catalog.register("site-base", custom)
    image = catalog.get("site-base")
    assert image.flatten().exists("/site/base-marker")
    # usable from a Dockerfile FROM
    built = Builder(catalog).build_dockerfile("FROM site-base\nRUN touch /x")
    assert built.flatten().exists("/site/base-marker")


def test_register_image_instance():
    catalog = BaseImageCatalog()
    t = FileTree()
    t.create_file("/pinned", size=1)
    image = OCIImage(ImageConfig(), [Layer(t)])
    catalog.register_image("pinned:1.0", image)
    assert catalog.get("pinned:1.0") is image


def test_register_invalidates_cache():
    catalog = BaseImageCatalog()
    original = catalog.get("alpine")

    def patched():
        t = FileTree()
        t.create_file("/patched", size=1)
        return OCIImage(ImageConfig(), [Layer(t)])

    catalog.register("alpine", patched)
    assert catalog.get("alpine") is not original
    assert catalog.get("alpine").flatten().exists("/patched")


def test_scratch_is_empty():
    scratch = BaseImageCatalog().get("scratch")
    assert scratch.num_files == 0
