"""Content-addressed flatten / convert caches (repro.oci.squash)."""

from repro.fs import FileTree
from repro.oci import ImageConfig, Layer, OCIImage
from repro.oci.squash import clear_caches, flatten_image, oci_to_squash
from repro.sim import profile


def make_image(files: dict[str, bytes]) -> OCIImage:
    t = FileTree()
    for path, data in files.items():
        t.create_file(path, data=data)
    t.create_file("/lib/bulk.so", size=10_000)
    return OCIImage(ImageConfig(), [Layer(t, created_by="base")])


def test_flatten_memo_returns_isolated_clones():
    image = make_image({"/etc/conf": b"v1"})
    a = image.flatten()
    b = image.flatten()
    assert a is not b
    assert [p for p, _ in a.walk()] == [p for p, _ in b.walk()]
    # the memoized master shares nodes; mutations stay per-clone
    assert a.get("/etc/conf") is b.get("/etc/conf")
    a.write("/etc/conf", b"v2")
    assert b.get("/etc/conf").data == b"v1"
    assert image.flatten().get("/etc/conf").data == b"v1"


def test_flatten_image_is_content_addressed():
    clear_caches()
    image = make_image({"/etc/conf": b"v1"})
    prof = profile.enable()
    try:
        first = flatten_image(image)
        again = flatten_image(image)
        assert prof.flatten_cache_hits >= 1
        assert first is not again
        assert [p for p, _ in first.walk()] == [p for p, _ in again.walk()]
    finally:
        profile.disable()
        clear_caches()


def test_convert_cache_reuses_image_and_cost():
    clear_caches()
    image = make_image({"/etc/conf": b"v1"})
    squash1, cost1 = oci_to_squash(image, built_by_uid=0)
    squash2, cost2 = oci_to_squash(image, built_by_uid=0)
    assert squash1 is squash2
    assert cost1 == cost2
    # provenance is part of the key: a user-run conversion is distinct
    user_squash, user_cost = oci_to_squash(image, built_by_uid=1000)
    assert user_squash is not squash1
    assert user_squash.built_by_uid == 1000
    assert user_cost == cost1  # same deterministic work, different provenance
    clear_caches()
