"""Tests for ocicrypt-style OCI image encryption."""

import pytest

from repro.cluster import HostNode
from repro.engines import DockerEngine, EngineError, PodmanEngine
from repro.oci import Builder
from repro.oci.encryption import EncryptedOCIImage, encrypt_image
from repro.signing import KeyPair, SignatureError


@pytest.fixture
def image():
    return Builder().build_dockerfile("FROM alpine\nRUN write /secret/model.bin 5000000")


def test_encrypt_decrypt_roundtrip(image):
    key = KeyPair("site")
    enc = encrypt_image(image, key)
    assert isinstance(enc, EncryptedOCIImage)
    assert enc.digest != image.digest
    plain = enc.decrypt(key)
    assert plain.digest == image.digest
    assert plain.flatten().exists("/secret/model.bin")


def test_wrong_key_rejected(image):
    enc = encrypt_image(image, KeyPair("site"))
    with pytest.raises(SignatureError, match="encrypted for key"):
        enc.decrypt(KeyPair("mallory"))


def test_encryption_adds_envelope_overhead(image):
    enc = encrypt_image(image, KeyPair("site"))
    assert enc.compressed_size > image.compressed_size


def test_podman_runs_encrypted_oci_with_key(image):
    node = HostNode()
    podman = PodmanEngine(node)
    user = node.kernel.spawn(uid=1000)
    key = KeyPair("site")
    enc = encrypt_image(image, key)
    with pytest.raises(EngineError, match="decryption_key"):
        podman.run(enc, user)
    result = podman.run(enc, user, decryption_key=key)
    assert result.container.state.value == "running"
    assert result.container.exists("/secret/model.bin")


def test_docker_refuses_encrypted_oci(image):
    """Table 2: Docker encryption 'no, extensions available'."""
    node = HostNode()
    docker = DockerEngine(node)
    docker.start_daemon()
    enc = encrypt_image(image, KeyPair("site"))
    with pytest.raises(EngineError, match="plain OCI"):
        docker.run(enc, node.kernel.spawn(uid=1000))
