"""Tests for eStargz lazy pulling (§7 outlook feature)."""

import pytest

from repro.fs.tree import FsError
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.oci.estargz import LazyMountedView, LazyPullTransport, to_estargz


@pytest.fixture
def image():
    builder = Builder(BaseImageCatalog())
    return builder.build_dockerfile(
        "FROM ubuntu:22.04\n"
        "RUN write /opt/app/solver 20000000\n"
        "RUN write /opt/app/data/big-model.bin 200000000\n"
        "ENTRYPOINT /opt/app/solver"
    )


def test_toc_covers_every_file(image):
    estargz = to_estargz(image)
    files = {p for p, _ in image.flatten().files()}
    assert set(estargz.toc) == files
    assert estargz.total_compressed < image.uncompressed_size


def test_mount_is_cheap_reads_fault_in(image):
    estargz = to_estargz(image)
    view = LazyMountedView(estargz)
    mount = view.mount_cost()
    # mounting fetched only the TOC — a tiny fraction of the image
    assert view.resident_fraction() < 0.01
    cost1, size = view.read("/opt/app/solver")
    assert size == 20000000
    cost2, _ = view.read("/opt/app/solver")
    assert cost2 < cost1 / 5  # second read: chunk cache hit
    assert view.stats["faults"] == 1


def test_landmarks_prefetched_at_mount(image):
    estargz = to_estargz(image, prefetch_landmarks=("/opt/app/solver",))
    view = LazyMountedView(estargz)
    view.mount_cost()
    cost, _ = view.read("/opt/app/solver")
    assert view.stats["faults"] == 1  # faulted during mount, not on read
    assert cost < 0.05


def test_unknown_landmarks_ignored(image):
    estargz = to_estargz(image, prefetch_landmarks=("/ghost",))
    assert estargz.prefetch_landmarks == ()


def test_resident_fraction_grows_with_touch(image):
    estargz = to_estargz(image)
    view = LazyMountedView(estargz)
    view.mount_cost()
    before = view.resident_fraction()
    view.read("/opt/app/data/big-model.bin")
    assert view.resident_fraction() > before


def test_untouched_bytes_never_fetched(image):
    """The lazy-pull headline: a run that never touches the big model
    transfers a tiny fraction of the image."""
    estargz = to_estargz(image)
    transport = LazyPullTransport()
    view = LazyMountedView(estargz, transport)
    view.mount_cost()
    view.read("/opt/app/solver")
    assert transport.stats["bytes_fetched"] < image.compressed_size / 10


def test_missing_paths_error(image):
    view = LazyMountedView(to_estargz(image))
    with pytest.raises(FsError):
        view.open("/nope")
    with pytest.raises(FsError):
        view.read("/opt/app")  # a directory
