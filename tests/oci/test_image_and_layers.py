"""Tests for digests, layers, manifests, images, references."""

import pytest
from hypothesis import given, strategies as st

from repro.fs import FileTree
from repro.oci import (
    ImageConfig,
    ImageReference,
    Layer,
    OCIImage,
    diff_trees,
    digest_str,
    short_digest,
)
from repro.oci.digest import is_digest


def tree_of(files: dict[str, int]) -> FileTree:
    t = FileTree()
    for path, size in files.items():
        t.create_file(path, size=size)
    return t


# -- digests ------------------------------------------------------------------

def test_digest_stability_and_format():
    d = digest_str("hello")
    assert d == digest_str("hello")
    assert is_digest(d)
    assert not is_digest("sha256:short")
    assert len(short_digest(d)) == 12


# -- layers -------------------------------------------------------------------

def test_identical_content_same_layer_digest():
    a = Layer(tree_of({"/bin/x": 100}))
    b = Layer(tree_of({"/bin/x": 100}))
    # size-only files hash identity, so build both from data files instead
    t1, t2 = FileTree(), FileTree()
    t1.create_file("/etc/c", data=b"same")
    t2.create_file("/etc/c", data=b"same")
    assert Layer(t1).digest == Layer(t2).digest
    assert Layer(t1) == Layer(t2)


def test_different_content_different_digest():
    t1, t2 = FileTree(), FileTree()
    t1.create_file("/etc/c", data=b"one")
    t2.create_file("/etc/c", data=b"two")
    assert Layer(t1).digest != Layer(t2).digest


def test_created_by_affects_digest():
    t = FileTree()
    t.create_file("/x", data=b"v")
    assert Layer(t, created_by="A").digest != Layer(t, created_by="B").digest


def test_diff_trees_additions_and_modifications():
    base = FileTree()
    base.create_file("/etc/keep", data=b"k")
    base.create_file("/etc/mod", data=b"old")
    new = base.clone()
    new.create_file("/etc/mod", data=b"new")
    new.create_file("/etc/added", data=b"a")
    layer = diff_trees(base, new)
    assert layer.tree.exists("/etc/mod")
    assert layer.tree.exists("/etc/added")
    assert not layer.tree.exists("/etc/keep")


def test_diff_trees_deletion_becomes_whiteout():
    base = tree_of({"/opt/junk": 10, "/opt/keep": 10})
    new = base.clone()
    new.remove("/opt/junk")
    layer = diff_trees(base, new)
    rebuilt = base.clone()
    layer.apply_to(rebuilt)
    assert not rebuilt.exists("/opt/junk")
    assert rebuilt.exists("/opt/keep")


def test_diff_apply_roundtrip():
    base = tree_of({"/a/b": 5, "/c": 7})
    new = base.clone()
    new.create_file("/a/new", data=b"data")
    new.remove("/c")
    layer = diff_trees(base, new)
    rebuilt = base.clone()
    layer.apply_to(rebuilt)
    assert rebuilt.exists("/a/new")
    assert not rebuilt.exists("/c")
    assert rebuilt.num_files() == new.num_files()


@given(
    st.dictionaries(
        st.sampled_from(["/f1", "/f2", "/d/f3", "/d/f4", "/e/f5"]),
        st.binary(min_size=0, max_size=8),
        min_size=0,
        max_size=5,
    ),
    st.dictionaries(
        st.sampled_from(["/f1", "/f2", "/d/f3", "/d/f4", "/e/f5"]),
        st.binary(min_size=0, max_size=8),
        min_size=0,
        max_size=5,
    ),
)
def test_property_diff_apply_reconstructs(base_files, new_files):
    base, new = FileTree(), FileTree()
    for p, d in base_files.items():
        base.create_file(p, data=d)
    for p, d in new_files.items():
        new.create_file(p, data=d)
    layer = diff_trees(base, new)
    rebuilt = base.clone()
    layer.apply_to(rebuilt)
    rebuilt_files = {p: n.data for p, n in rebuilt.files()}
    expected_files = {p: n.data for p, n in new.files()}
    assert rebuilt_files == expected_files


# -- images -------------------------------------------------------------------

def test_image_flatten_applies_layers_in_order():
    l1 = Layer(tree_of({"/bin/tool": 100}))
    t2 = FileTree()
    t2.create_file("/bin/tool", data=b"v2")
    l2 = Layer(t2)
    img = OCIImage(ImageConfig(), [l1, l2])
    flat = img.flatten()
    node = flat.get("/bin/tool")
    assert node.data == b"v2"


def test_image_requires_layers():
    with pytest.raises(ValueError):
        OCIImage(ImageConfig(), [])


def test_image_sizes_and_digest_stability():
    img = OCIImage(ImageConfig(), [Layer(tree_of({"/x": 1000}))])
    assert img.uncompressed_size == 1000
    assert img.compressed_size == 500
    assert img.digest == img.manifest.digest


def test_manifest_digest_sensitive_to_layer_order():
    t1, t2 = FileTree(), FileTree()
    t1.create_file("/a", data=b"a")
    t2.create_file("/b", data=b"b")
    la, lb = Layer(t1), Layer(t2)
    img1 = OCIImage(ImageConfig(), [la, lb])
    img2 = OCIImage(ImageConfig(), [lb, la])
    assert img1.digest != img2.digest


def test_config_argv_combines_entrypoint_and_cmd():
    cfg = ImageConfig(entrypoint=("python",), cmd=("-m", "app"))
    assert cfg.argv() == ("python", "-m", "app")


# -- references ------------------------------------------------------------------

@pytest.mark.parametrize(
    "ref,expected",
    [
        ("ubuntu", ("docker.io", "ubuntu", "latest")),
        ("ubuntu:22.04", ("docker.io", "ubuntu", "22.04")),
        ("nersc/podman-hpc:1.0", ("docker.io", "nersc/podman-hpc", "1.0")),
        ("quay.example.org/hpc/solver:v3", ("quay.example.org", "hpc/solver", "v3")),
        ("localhost/x", ("localhost", "x", "latest")),
        ("registry:5000/a/b:t", ("registry:5000", "a/b", "t")),
    ],
)
def test_reference_parsing(ref, expected):
    parsed = ImageReference.parse(ref)
    assert (parsed.registry, parsed.repository, parsed.tag) == expected


def test_reference_roundtrip_str():
    parsed = ImageReference.parse("quay.io/org/app:1.2")
    assert str(parsed) == "quay.io/org/app:1.2"


def test_reference_invalid():
    with pytest.raises(ValueError):
        ImageReference.parse("quay.io/:tag")
