"""Tests for the OCI runtime lifecycle, hooks, and namespace setup."""

import pytest

from repro.fs import FileTree, PROFILES
from repro.fs.drivers import mount_overlay
from repro.kernel import Kernel, KernelConfig, NamespaceKind
from repro.kernel.errors import EINVAL, EPERM
from repro.oci import (
    Bundle,
    CrunRuntime,
    ContainerState,
    HookPoint,
    HookRegistry,
    NamespaceRequest,
    RuncRuntime,
    RuntimeSpec,
)
from repro.oci.hooks import Hook, HookError


@pytest.fixture
def kernel():
    return Kernel(KernelConfig.modern_hpc())


def make_bundle(namespaces=None, **spec_kwargs) -> Bundle:
    tree = FileTree()
    tree.create_file("/bin/app", size=1000, mode=0o755)
    tree.create_file("/etc/passwd", data=b"root:x:0:0::/:/bin/sh\n")
    rootfs = mount_overlay([tree], PROFILES["nvme"], writable=True)
    spec = RuntimeSpec(
        args=("/bin/app",),
        namespaces=namespaces or NamespaceRequest.hpc_minimal(),
        **spec_kwargs,
    )
    return Bundle(rootfs=rootfs, spec=spec, origin="test")


def test_full_lifecycle(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    ctr = rt.create(make_bundle(), owner=user)
    assert ctr.state is ContainerState.CREATED
    rt.start(ctr)
    assert ctr.state is ContainerState.RUNNING
    rt.finish(ctr, exit_code=0)
    assert ctr.state is ContainerState.STOPPED
    rt.delete(ctr)
    assert ctr.state is ContainerState.DELETED
    assert ctr.id not in rt.containers


def test_rootless_container_namespaces(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    ctr = rt.create(make_bundle(), owner=user)
    created = ctr.namespaces_created()
    assert NamespaceKind.USER in created
    assert NamespaceKind.MNT in created
    assert NamespaceKind.NET not in created  # HPC minimal isolation
    assert ctr.proc.root == "/run/oci/rootfs"  # pivoted


def test_full_isolation_namespaces(kernel):
    rt = RuncRuntime(kernel)
    user = kernel.spawn(uid=1000)
    ctr = rt.create(make_bundle(namespaces=NamespaceRequest.full()), owner=user)
    created = ctr.namespaces_created()
    assert {NamespaceKind.NET, NamespaceKind.IPC, NamespaceKind.PID} <= created


def test_rootless_user_appears_as_container_root(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    ctr = rt.create(make_bundle(), owner=user)
    # Host identity preserved; inside the userns the process is uid 0.
    assert ctr.proc.host_uid() == 1000
    assert ctr.proc.container_uid() == 0


def test_rootless_denied_on_legacy_site():
    kernel = Kernel(KernelConfig.legacy_hpc())
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    with pytest.raises(EPERM, match="user namespaces"):
        rt.create(make_bundle(), owner=user)


def test_invalid_bundle_rejected(kernel):
    rt = CrunRuntime(kernel)
    bundle = make_bundle()
    bundle.spec = RuntimeSpec(args=(), namespaces=NamespaceRequest.hpc_minimal())
    with pytest.raises(EINVAL, match="invalid bundle"):
        rt.create(bundle, owner=kernel.spawn(uid=1000))


def test_duplicate_container_id(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    rt.create(make_bundle(), owner=user, container_id="dup")
    with pytest.raises(EINVAL, match="already in use"):
        rt.create(make_bundle(), owner=user, container_id="dup")


def test_state_machine_guards(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    ctr = rt.create(make_bundle(), owner=user)
    with pytest.raises(EINVAL):
        rt.kill(ctr)  # not running yet
    rt.start(ctr)
    with pytest.raises(EINVAL):
        rt.start(ctr)  # already running
    with pytest.raises(EPERM):
        rt.delete(ctr)  # running
    rt.kill(ctr)
    assert ctr.exit_code == 137


def test_hooks_run_in_order_at_each_point(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    trace = []
    hooks = HookRegistry()
    hooks.add(HookPoint.CREATE_RUNTIME, lambda ctx: trace.append("cr"), name="cr")
    hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: trace.append("cc-late"), name="late", priority=90)
    hooks.add(HookPoint.CREATE_CONTAINER, lambda ctx: trace.append("cc-early"), name="early", priority=10)
    hooks.add(HookPoint.START_CONTAINER, lambda ctx: trace.append("sc"), name="sc")
    hooks.add(HookPoint.POSTSTART, lambda ctx: trace.append("ps"), name="ps")
    hooks.add(HookPoint.POSTSTOP, lambda ctx: trace.append("stop"), name="stop")
    bundle = make_bundle()
    bundle.spec.hooks = hooks
    ctr = rt.create(bundle, owner=user)
    rt.start(ctr)
    rt.finish(ctr)
    rt.delete(ctr)
    assert trace == ["cr", "cc-early", "cc-late", "sc", "ps", "stop"]


def test_hook_failure_aborts(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    hooks = HookRegistry()

    def bad(ctx):
        raise ValueError("driver mismatch")

    hooks.add(HookPoint.CREATE_CONTAINER, bad, name="abi-check")
    bundle = make_bundle()
    bundle.spec.hooks = hooks
    with pytest.raises(HookError, match="abi-check"):
        rt.create(bundle, owner=user)


def test_hook_context_carries_container_and_kernel(kernel):
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    seen = {}
    hooks = HookRegistry()
    hooks.add(HookPoint.POSTSTART, lambda ctx: seen.update(ctx), name="grab")
    bundle = make_bundle()
    bundle.spec.hooks = hooks
    ctr = rt.create(bundle, owner=user)
    rt.start(ctr)
    assert seen["container"] is ctr
    assert seen["kernel"] is kernel
    assert seen["proc"] is ctr.proc


def test_bind_mounts_resolve_inside_container(kernel):
    from repro.oci.bundle import BindMountSpec

    host = FileTree()
    host.create_file("/usr/lib64/libcuda.so.1", size=30_000_000)
    bundle = make_bundle()
    bundle.spec.bind_mounts.append(
        BindMountSpec(source_tree=host, source_path="/usr/lib64", target_path="/usr/lib/host")
    )
    rt = CrunRuntime(kernel)
    ctr = rt.create(bundle, owner=kernel.spawn(uid=1000))
    assert ctr.exists("/usr/lib/host/libcuda.so.1")
    assert ctr.exists("/bin/app")


def test_bind_mount_missing_source_fails_validation(kernel):
    from repro.oci.bundle import BindMountSpec

    bundle = make_bundle()
    bundle.spec.bind_mounts.append(
        BindMountSpec(source_tree=FileTree(), source_path="/nope", target_path="/x")
    )
    rt = CrunRuntime(kernel)
    with pytest.raises(EINVAL, match="bind source missing"):
        rt.create(bundle, owner=kernel.spawn(uid=1000))


def test_device_exposure_requires_grant(kernel):
    kernel.host_devices.add("nvidia0")
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    bundle = make_bundle(devices=("nvidia0",))
    with pytest.raises(EPERM):
        rt.create(bundle, owner=user)
    kernel.grant_device(user, "nvidia0")
    ctr = rt.create(make_bundle(devices=("nvidia0",)), owner=user)
    assert "nvidia0" in ctr.proc.exposed_devices


def test_cgroup_placement_via_delegation(kernel):
    kernel.cgroups.create("/user.slice/user-1000")
    kernel.cgroups.delegate("/user.slice/user-1000", uid=1000)
    rt = CrunRuntime(kernel)
    user = kernel.spawn(uid=1000)
    bundle = make_bundle(cgroup_path="/user.slice/user-1000/ctr1")
    ctr = rt.create(bundle, owner=user)
    assert kernel.cgroups.cgroup_of(ctr.proc.pid).path == "/user.slice/user-1000/ctr1"


def test_crun_faster_than_runc(kernel):
    assert CrunRuntime(kernel).startup_cost() < RuncRuntime(kernel).startup_cost()
