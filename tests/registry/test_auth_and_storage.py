"""Tests for auth providers, token scopes, and blob stores."""

import pytest

from repro.registry import (
    AuthError,
    AuthService,
    InternalAuth,
    LDAPAuth,
    OIDCAuth,
    S3BlobStore,
    FSBlobStore,
)
from repro.registry.auth import PAMAuth


def test_provider_chain_tries_all():
    ldap, internal = LDAPAuth(), InternalAuth()
    ldap.add_user("hpcuser", "dir-secret")
    internal.add_user("svc-bot", "bot-secret")
    auth = AuthService([internal, ldap])
    assert auth.login("hpcuser", "dir-secret").provider == "ldap"
    assert auth.login("svc-bot", "bot-secret").provider == "internal"
    with pytest.raises(AuthError):
        auth.login("hpcuser", "wrong")


def test_empty_provider_list_rejected():
    with pytest.raises(ValueError):
        AuthService([])


def test_oidc_token_flow():
    oidc = OIDCAuth()
    idp_token = oidc.issue_idp_token("alice@federation")
    auth = AuthService([oidc])
    token = auth.login("alice@federation", idp_token)
    assert token.provider == "oidc"
    # passwords don't work against OIDC
    with pytest.raises(AuthError):
        auth.login("alice@federation", "a-password")


def test_token_scopes_and_revocation():
    pam = PAMAuth()
    pam.add_user("bob", "pw")
    auth = AuthService([pam])
    token = auth.login("bob", "pw", scopes=("pull",))
    assert auth.validate(token.value, "pull").username == "bob"
    with pytest.raises(AuthError, match="scope"):
        auth.validate(token.value, "push")
    admin = auth.login("bob", "pw", scopes=("admin",))
    auth.validate(admin.value, "push")  # admin implies everything
    auth.revoke(token.value)
    with pytest.raises(AuthError, match="invalid token"):
        auth.validate(token.value, "pull")


def test_s3_store_slower_requests_than_fs():
    assert S3BlobStore.request_latency > 10 * FSBlobStore.request_latency


def test_blob_refcounting_delete():
    from repro.registry.storage import StorageError

    store = FSBlobStore()
    store.put("sha256:" + "a" * 64, 100)
    store.put("sha256:" + "a" * 64, 100)  # dedup: refcount 2
    store.delete("sha256:" + "a" * 64)
    assert store.has("sha256:" + "a" * 64)  # still referenced
    store.delete("sha256:" + "a" * 64)
    assert not store.has("sha256:" + "a" * 64)
    with pytest.raises(StorageError):
        store.delete("sha256:" + "a" * 64)
