"""Tests for the OCI distribution registry: push/pull, dedup, tenancy,
quotas, auth, artifacts, squashing."""

import pytest

from repro.fs import FileTree
from repro.oci import Builder, ImageConfig, Layer, OCIImage
from repro.oci.catalog import BaseImageCatalog
from repro.registry import (
    AuthError,
    AuthService,
    InternalAuth,
    OCIDistributionRegistry,
    QuotaExceeded,
    QuotaManager,
    RegistryError,
)
from repro.registry.registries import COSIGN_MEDIA_TYPE


def small_image(content: bytes = b"app") -> OCIImage:
    t = FileTree()
    t.create_file("/bin/app", data=content)
    return OCIImage(ImageConfig(), [Layer(t, created_by="base")])


@pytest.fixture
def registry():
    return OCIDistributionRegistry(name="test")


def test_push_pull_roundtrip(registry):
    img = small_image()
    push_cost = registry.push_image("hpc/app", "v1", img)
    assert push_cost > 0
    pulled, pull_cost = registry.pull_image("hpc/app", "v1")
    assert pulled.digest == img.digest
    assert pull_cost > 0
    assert registry.list_tags("hpc/app") == ["v1"]


def test_pull_unknown_image(registry):
    with pytest.raises(RegistryError, match="no such image"):
        registry.pull_image("ghost/app", "v1")


def test_layer_dedup_across_tags(registry):
    """Two tags sharing layers upload each blob once (CAS, §3.1)."""
    builder = Builder(BaseImageCatalog())
    img1 = builder.build_dockerfile("FROM alpine\nRUN touch /a")
    img2 = builder.build_dockerfile("FROM alpine\nRUN touch /b")
    registry.push_image("hpc/app", "v1", img1)
    skipped_before = registry.stats["blob_uploads_skipped"]
    registry.push_image("hpc/app", "v2", img2)
    # the shared alpine base layer was skipped on the second push
    assert registry.stats["blob_uploads_skipped"] > skipped_before
    assert registry.store.stats["dedup_hits"] == 0  # skipped before reaching store


def test_pull_with_local_cache_costs_less(registry):
    builder = Builder(BaseImageCatalog())
    img = builder.build_dockerfile("FROM ubuntu\nRUN write /big 100000000")
    registry.push_image("hpc/app", "v1", img)
    _, cold = registry.pull_image("hpc/app", "v1")
    base_digest = img.layers[0].digest
    _, warm = registry.pull_image("hpc/app", "v1", have_digests={base_digest})
    assert warm < cold


def test_multi_tenancy_enforced():
    reg = OCIDistributionRegistry(name="t", multi_tenant=True)
    with pytest.raises(RegistryError, match="unknown project"):
        reg.push_image("neworg/app", "v1", small_image())
    reg.create_tenant("neworg")
    reg.push_image("neworg/app", "v1", small_image())


def test_tenancy_unsupported():
    reg = OCIDistributionRegistry(name="t", multi_tenant=False)
    with pytest.raises(RegistryError, match="no multi-tenancy"):
        reg.create_tenant("org")


def test_quota_enforcement():
    quotas = QuotaManager()
    reg = OCIDistributionRegistry(name="t", multi_tenant=True, quotas=quotas)
    reg.create_tenant("small")
    quotas.set_limit("small", 1000)
    t = FileTree()
    t.create_file("/huge", size=1_000_000)
    big = OCIImage(ImageConfig(), [Layer(t)])
    with pytest.raises(QuotaExceeded):
        reg.push_image("small/app", "v1", big)
    # tiny image fits
    reg.push_image("small/app", "tiny", small_image())


def test_quota_not_charged_for_dedup():
    quotas = QuotaManager()
    reg = OCIDistributionRegistry(name="t", multi_tenant=True, quotas=quotas)
    reg.create_tenant("org")
    quotas.set_limit("org", 10_000)
    img = small_image(b"payload")
    reg.push_image("org/app", "v1", img)
    used_after_first = quotas.used("org")
    reg.push_image("org/app", "v1-again", img)
    assert quotas.used("org") == used_after_first


def test_auth_required_when_configured():
    auth = AuthService([InternalAuth()])
    auth.providers[0].add_user("alice", "pw")
    reg = OCIDistributionRegistry(name="t", auth=auth)
    with pytest.raises(RegistryError, match="requires authentication"):
        reg.push_image("r/app", "v1", small_image())
    token = auth.login("alice", "pw", scopes=("push", "pull"))
    reg.push_image("r/app", "v1", small_image(), token=token.value)
    pulled, _ = reg.pull_image("r/app", "v1", token=token.value)
    assert pulled is not None


def test_auth_scope_enforced():
    auth = AuthService([InternalAuth()])
    auth.providers[0].add_user("bob", "pw")
    reg = OCIDistributionRegistry(name="t", auth=auth)
    pull_only = auth.login("bob", "pw", scopes=("pull",))
    with pytest.raises(AuthError, match="lacks scope"):
        reg.push_image("r/app", "v1", small_image(), token=pull_only.value)


def test_artifact_policy():
    reg = OCIDistributionRegistry(name="strict")
    with pytest.raises(RegistryError, match="does not accept"):
        reg.push_artifact("r", "sig", COSIGN_MEDIA_TYPE, size=100)
    lax = OCIDistributionRegistry(name="lax", extra_media_types=frozenset({COSIGN_MEDIA_TYPE}))
    lax.push_artifact("r", "sig", COSIGN_MEDIA_TYPE, size=100, payload={"sig": "x"})
    assert lax.get_artifact("r", "sig").payload == {"sig": "x"}
    userdef = OCIDistributionRegistry(name="userdef", user_defined_artifacts=True)
    userdef.push_artifact("r", "custom", "application/x-custom", size=10)


def test_squashing_gated_and_correct():
    reg = OCIDistributionRegistry(name="basic")
    builder = Builder(BaseImageCatalog())
    img = builder.build_dockerfile("FROM alpine\nRUN touch /a\nRUN touch /b")
    reg.push_image("r/app", "v1", img)
    with pytest.raises(RegistryError, match="squash"):
        reg.squashed_image("r/app", "v1")
    squasher = OCIDistributionRegistry(name="quaylike", supports_squashing=True)
    squasher.push_image("r/app", "v1", img)
    flat = squasher.squashed_image("r/app", "v1")
    assert len(flat.layers) == 1
    assert flat.flatten().exists("/a") and flat.flatten().exists("/b")
