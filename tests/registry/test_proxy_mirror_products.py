"""Tests for rate limiting, proxying, mirroring, Library API, products."""

import pytest

from repro.fs import FileTree
from repro.oci import Builder, ImageConfig, Layer, OCIImage
from repro.oci.catalog import BaseImageCatalog
from repro.registry import (
    ALL_REGISTRIES,
    Gitea,
    Harbor,
    LibraryAPIRegistry,
    MirrorDirection,
    OCIDistributionRegistry,
    PullThroughProxy,
    Quay,
    RateLimiter,
    RateLimitExceeded,
    RegistryError,
    Shpc,
    Zot,
)
from repro.registry.library_api import LibraryRef


def small_image(tag_content=b"x") -> OCIImage:
    t = FileTree()
    t.create_file("/bin/app", data=tag_content)
    return OCIImage(ImageConfig(), [Layer(t)])


# -- rate limiting ------------------------------------------------------------------

def test_rate_limiter_sliding_window():
    rl = RateLimiter(max_requests=3, window_seconds=100)
    for t in (0, 10, 20):
        rl.check("1.2.3.4", now=t)
    with pytest.raises(RateLimitExceeded) as exc:
        rl.check("1.2.3.4", now=30)
    assert exc.value.retry_after == pytest.approx(70)
    # window slides: the t=0 request expires after 100s
    rl.check("1.2.3.4", now=101)


def test_rate_limiter_per_ip():
    rl = RateLimiter(max_requests=1, window_seconds=100)
    rl.check("a", now=0)
    rl.check("b", now=0)  # different IP unaffected
    assert rl.remaining("a", now=0) == 0
    assert rl.remaining("c", now=0) == 1


def test_dockerhub_like_cluster_exhausts_limit():
    """64 nodes behind one NAT IP: the per-IP budget dies immediately."""
    hub = OCIDistributionRegistry(
        name="dockerhub", rate_limiter=RateLimiter(max_requests=100, window_seconds=6 * 3600)
    )
    hub.push_image("library/python", "3.11", small_image())
    nat_ip = "198.51.100.1"
    failures = 0
    for node in range(128):
        try:
            hub.pull_image("library/python", "3.11", ip=nat_ip, now=node * 1.0)
        except RateLimitExceeded:
            failures += 1
    assert failures == 28


def test_proxy_absorbs_rate_limit():
    hub = OCIDistributionRegistry(
        name="dockerhub", rate_limiter=RateLimiter(max_requests=100, window_seconds=6 * 3600)
    )
    hub.push_image("library/python", "3.11", small_image())
    proxy = PullThroughProxy(hub)
    for node in range(128):
        proxy.pull_image("library/python", "3.11", now=node * 1.0)
    assert proxy.stats["upstream_requests"] == 1
    assert proxy.hit_rate == pytest.approx(127 / 128)


def test_proxy_serves_cached_content_identically():
    hub = OCIDistributionRegistry(name="hub")
    img = small_image(b"payload")
    hub.push_image("org/app", "v1", img)
    proxy = PullThroughProxy(hub)
    first, _ = proxy.pull_image("org/app", "v1")
    second, _ = proxy.pull_image("org/app", "v1")
    assert first.digest == img.digest == second.digest


# -- mirroring ---------------------------------------------------------------------------

def test_push_mirroring():
    harbor = Harbor()
    peer = OCIDistributionRegistry(name="peer")
    harbor.add_mirror(MirrorDirection.PUSH, "hpc/*", peer)
    assert harbor.oci is not None
    harbor.oci.create_tenant("hpc")
    harbor.oci.push_image("hpc/app", "v1", small_image())
    harbor.replicator.on_push("hpc/app", "v1")
    assert peer.resolve("hpc/app", "v1")


def test_pull_mirroring_sync():
    quay = Quay()
    upstream = OCIDistributionRegistry(name="upstream")
    upstream.push_image("science/tool", "v2", small_image())
    quay.add_mirror(MirrorDirection.PULL, "science/*", upstream)
    assert quay.oci is not None
    quay.oci.create_tenant("science")
    quay.replicator.sync()
    assert quay.oci.resolve("science/tool", "v2")
    # second sync is a no-op (digests match)
    quay.replicator.sync()
    assert quay.replicator.stats["pull_syncs"] == 1


def test_mirroring_gated_by_traits():
    gitea = Gitea()
    peer = OCIDistributionRegistry(name="peer")
    with pytest.raises(RegistryError, match="mirroring"):
        gitea.add_mirror(MirrorDirection.PULL, "*", peer)
    quay = Quay()
    with pytest.raises(RegistryError, match="mirroring"):
        quay.add_mirror(MirrorDirection.PUSH, "*", peer)  # Quay: pull only


# -- Library API ------------------------------------------------------------------------------

def test_library_api_push_pull():
    lib = LibraryAPIRegistry()
    builder = Builder(BaseImageCatalog())
    sif = builder.build_definition("Bootstrap: docker\nFrom: alpine\n%post\n    touch /x")
    cost = lib.push_sif("library://lab/tools/analysis:v1", sif)
    assert cost > 0
    pulled, _ = lib.pull_sif("library://lab/tools/analysis:v1")
    assert pulled.digest == sif.digest
    assert lib.list_containers("lab", "tools") == ["analysis"]


def test_library_ref_parsing():
    ref = LibraryRef.parse("library://e/c/n:v2")
    assert (ref.entity, ref.collection, ref.container, ref.tag) == ("e", "c", "n", "v2")
    assert LibraryRef.parse("e/c/n").tag == "latest"
    with pytest.raises(RegistryError):
        LibraryRef.parse("only/two")


def test_library_pull_missing():
    lib = LibraryAPIRegistry()
    with pytest.raises(RegistryError, match="no such image"):
        lib.pull_sif("library://a/b/c")


# -- products ------------------------------------------------------------------------------------

def test_all_products_instantiate_with_declared_protocols():
    for cls in ALL_REGISTRIES:
        product = cls()
        assert (product.oci is not None) == product.traits.supports_oci
        assert (product.library is not None) == product.traits.supports_library_api


def test_shpc_is_library_only():
    shpc = Shpc()
    assert shpc.oci is None
    assert shpc.library is not None


def test_hinkskalle_speaks_both_protocols():
    from repro.registry import Hinkskalle

    h = Hinkskalle()
    assert h.oci is not None and h.library is not None


def test_proxy_gated_by_traits():
    upstream = OCIDistributionRegistry(name="hub")
    with pytest.raises(RegistryError, match="proxying"):
        Zot().create_proxy(upstream)
    proxy = Quay().create_proxy(upstream)
    assert isinstance(proxy, PullThroughProxy)


def test_signing_gated_by_traits():
    from repro.registry import GitLabRegistry

    gitlab = GitLabRegistry()
    with pytest.raises(RegistryError, match="signatures"):
        gitlab.attach_signature("org/app", "sha256:" + "a" * 64)
    harbor = Harbor()
    assert harbor.oci is not None
    harbor.oci.create_tenant("org")
    harbor.oci.push_image("org/app", "v1", small_image())
    digest = harbor.oci.resolve("org/app", "v1")
    harbor.attach_signature("org/app", digest, payload={"by": "ci"})
    assert harbor.get_signature("org/app", digest) == {"by": "ci"}


def test_quay_squashing_enabled():
    quay = Quay()
    assert quay.oci is not None and quay.oci.supports_squashing
    harbor = Harbor()
    assert harbor.oci is not None and not harbor.oci.supports_squashing


def test_auth_providers_match_traits():
    for cls in ALL_REGISTRIES:
        product = cls()
        if product.auth is not None:
            names = set(product.auth.provider_names())
            declared = set(product.traits.auth_provider_names) & set(names)
            assert declared == names
