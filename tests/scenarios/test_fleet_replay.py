"""Fleet→scenario replay bridge: determinism, parallel identity, and
fast-vs-naive equivalence on a small fleet."""

import dataclasses
import json

from repro.scenarios.fleet_replay import (
    replay_report_document,
    run_fleet_replay,
)
from repro.workload.fleet import FleetConfig

SMALL = FleetConfig(
    tenants=3, nodes=6, starts=30, images=4, seed=1, shards=2, day=600.0
)


def doc_json(config, jobs=1):
    return json.dumps(
        replay_report_document(run_fleet_replay(config, jobs=jobs)),
        indent=2,
        sort_keys=True,
    )


def test_replay_completes_every_start_without_leaks():
    result = run_fleet_replay(SMALL)
    assert result.submitted == SMALL.starts
    assert result.completed + result.failed == result.submitted
    assert result.failed == 0
    assert result.leaks == []
    assert result.binds >= result.completed
    assert result.makespan > 0.0
    # each shard got its slice of the fleet's node pool
    assert sum(s.nodes for s in result.shards) == SMALL.nodes


def test_replay_is_deterministic_and_jobs_invariant():
    serial = doc_json(SMALL, jobs=1)
    assert doc_json(SMALL, jobs=1) == serial      # rerun: byte-identical
    assert doc_json(SMALL, jobs=2) == serial      # parallel: byte-identical


def test_replay_fast_matches_naive_oracle():
    fast = json.loads(doc_json(SMALL))
    naive = json.loads(doc_json(dataclasses.replace(SMALL, naive=True)))
    # the only allowed difference is the config flag itself
    assert fast["config"].pop("naive") is False
    assert naive["config"].pop("naive") is True
    assert fast == naive
