"""GPU pods through the §6.5 path: the WLM's device grants must reach
containers started by rootless kubelets inside the allocation."""

import pytest

from repro.cluster import GPUDevice, HostNode
from repro.engines import PodmanEngine
from repro.k8s import (
    ContainerSpec,
    CRIRuntime,
    K3sServer,
    Kubelet,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
)
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry
from repro.sim import Environment
from repro.wlm import JobSpec, SlurmController


def test_gpu_pod_in_allocation_gets_devices():
    env = Environment()
    host = HostNode(
        name="gpu0001",
        gpus=[GPUDevice("nvidia", "a100", 0), GPUDevice("nvidia", "a100", 1)],
        env=env,
    )
    wlm = SlurmController(env, [host])
    registry = OCIDistributionRegistry(name="site")
    image = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/train 1000000\nENTRYPOINT /opt/train"
    )
    registry.push_image("ml/train", "v1", image)
    server = K3sServer(env)
    state = {}

    def on_start(node, job, user_proc):
        cg = f"/slurm/uid_1000/job_{job.job_id}"
        engine = PodmanEngine(node.host)

        class GPUAwareCRI(CRIRuntime):
            def run_container(self, pulled, user, command=(), cgroup_path=None):
                # the kubelet device plugin passes the allocation's GPU
                # grants down to the engine
                return self.engine.run(
                    pulled, user, command=command or None,
                    cgroup_path=cgroup_path,
                    devices=tuple(sorted(getattr(user, "granted_devices", set()))),
                )

        kubelet = Kubelet(
            env, server.api, node.name, GPUAwareCRI(engine, registry),
            capacity=ResourceRequests(cpu=64, memory=2**38, gpu=2),
            user_proc=user_proc, cgroup_path=cg,
        )
        kubelet.start()
        state["kubelet"] = kubelet

    def bring_up(env):
        yield server.ready
        wlm.submit(JobSpec(name="gpu-alloc", user_uid=1000, nodes=1,
                           gpus_per_node=2, duration=None, on_start=on_start))

    env.process(bring_up(env))
    pod = Pod(
        metadata=ObjectMeta(name="train"),
        spec=PodSpec(
            containers=[ContainerSpec(
                name="train", image="registry.site.local/ml/train:v1",
                resources=ResourceRequests(cpu=8, gpu=2),
            )],
            duration=30,
        ),
    )

    def submit(env):
        yield env.timeout(20)
        server.api.create("Pod", pod)

    env.process(submit(env))
    env.run(until=200)
    assert pod.phase is PodPhase.SUCCEEDED
    result = pod.container_results[0]
    assert result.container.proc.exposed_devices == {"nvidia0", "nvidia1"}
    assert result.container.proc.host_uid() == 1000
