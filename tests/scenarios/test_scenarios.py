"""Tests for the §6 integration scenarios and the §6.6 comparison."""

import pytest

from repro.k8s.objects import PodPhase
from repro.scenarios import (
    ALL_SCENARIOS,
    BridgeOperatorScenario,
    KNoCScenario,
    KubeletInAllocationScenario,
    KubernetesInWLMScenario,
    OnDemandReallocationScenario,
    WLMInKubernetesScenario,
    evaluate_all,
    run_scenario,
)
from repro.scenarios.evaluate import summary_rows
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, NodeState


@pytest.fixture(scope="module")
def all_metrics():
    """Run every scenario once (module-scoped: the run is the expensive part)."""
    return {m.scenario: m for m in evaluate_all(n_nodes=4, n_pods=6)}


@pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
def test_every_scenario_completes_all_pods(scenario_cls, all_metrics):
    m = all_metrics[scenario_cls.name]
    assert m.pods_completed == m.pods_submitted == 6


def test_only_wlm_hosted_scenarios_have_accounting(all_metrics):
    """§6.6: accounting lives in the WLM only when pods run inside it."""
    with_acct = {name for name, m in all_metrics.items() if m.wlm_accounting_coverage >= 0.99}
    assert with_acct == {
        "kubernetes-in-wlm",
        "bridge-operator",
        "knoc-virtual-kubelet",
        "kubelet-in-allocation",
    }


def test_section66_only_knoc_and_65_satisfy_requirements(all_metrics):
    """'The only solutions satisfying the requirements are therefore the
    ones mentioned in section 6.5 and the second part of 6.4.'"""
    satisfying = {
        name for name, m in all_metrics.items() if m.satisfies_section6_requirements()
    }
    assert satisfying == {"knoc-virtual-kubelet", "kubelet-in-allocation"}


def test_65_additionally_standard_environment(all_metrics):
    """§6.5's advantage over KNoC: 'the use of a fully mainline K3s, and
    therefore a standard environment for Pods to run'."""
    assert all_metrics["kubelet-in-allocation"].standard_pod_environment
    assert not all_metrics["knoc-virtual-kubelet"].standard_pod_environment


def test_reallocation_is_slowest_to_first_pod(all_metrics):
    """§6.6: dynamic re-partitioning is 'cumbersome, slow'."""
    realloc = all_metrics["on-demand-reallocation"].mean_pod_startup
    for name, m in all_metrics.items():
        if name != "on-demand-reallocation":
            assert realloc > 5 * m.mean_pod_startup


def test_k8s_in_wlm_bootstrap_dominates_provision(all_metrics):
    """§6.3 pays the private-cluster bootstrap per workflow; §6.5's
    steady-state per-allocation provision is cheaper than a K3s boot."""
    m63 = all_metrics["kubernetes-in-wlm"]
    assert m63.provision_time > 8.0  # k3s boot + joins inside the allocation


def test_scenario_summary_rows_complete(all_metrics):
    rows = summary_rows(list(all_metrics.values()))
    assert len(rows) == 6
    for row in rows:
        assert set(row) >= {"scenario", "provision_s", "wlm_accounting", "transparent"}


# -- scenario-specific behaviours ------------------------------------------------

def test_reallocation_drains_and_returns_nodes():
    env = Environment()
    s = OnDemandReallocationScenario(env, n_nodes=4)
    ready = s.provision()
    env.run(until=ready)
    from repro.workload.generators import PodBatchGenerator
    from repro.scenarios.base import WORKFLOW_IMAGE

    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=1).batch(4)
    s.submit(pods)
    env.run(until=200)
    # during the pod run some WLM nodes are drained
    assert any(n.state in (NodeState.DRAINED, NodeState.DRAINING) for n in s.wlm.nodes)
    env.run(until=2000)
    # afterwards they are returned
    assert all(n.state is NodeState.IDLE for n in s.wlm.nodes)
    assert any("churn" in note for note in s.metrics().notes)


def test_reallocation_disturbs_wlm_backlog():
    """While nodes are loaned to Kubernetes, WLM jobs queue longer."""
    env = Environment()
    s = OnDemandReallocationScenario(env, n_nodes=2)
    ready = s.provision()
    env.run(until=ready)
    from repro.workload.generators import PodBatchGenerator
    from repro.scenarios.base import WORKFLOW_IMAGE

    s.submit(PodBatchGenerator(WORKFLOW_IMAGE, seed=2, cpu_choices=(64,)).batch(2))
    env.run(until=100)  # both nodes reconfiguring / in k8s
    job = s.wlm.submit(JobSpec(name="hpc", user_uid=1, nodes=2, duration=10))
    env.run(until=3000)
    assert job.state is JobState.COMPLETED
    assert job.wait_time > 100  # had to wait for the nodes to come home


def test_wlm_in_k8s_supports_classic_jobs_but_not_pod_accounting():
    env = Environment()
    s = WLMInKubernetesScenario(env, n_nodes=2)
    ready = s.provision()
    env.run(until=ready)
    job = s.submit_hpc_job(JobSpec(name="mpi", user_uid=7, nodes=2, duration=50))
    env.run(until=ready.value + 500)
    assert job.state is JobState.COMPLETED
    assert s.wlm.accounting.total_cpu_seconds(7) > 0
    # pod workload contributed nothing to WLM accounting
    assert s._accounted_cpu_seconds() == 0.0
    assert any("privileged" in n for n in s.notes)


def test_k8s_in_wlm_isolation_and_teardown():
    env = Environment()
    s = KubernetesInWLMScenario(env, n_nodes=2)
    ready = s.provision()
    env.run(until=ready)
    assert s.job.state is JobState.RUNNING
    # the whole allocation belongs to one user: per-user cluster
    assert all(p.creds.uid == 1000 for p in s.job.node_procs.values())
    s.teardown()
    env.run(until=env.now + 100)
    assert s.job.state is JobState.CANCELLED


def test_kubelets_in_allocation_are_rootless_and_labelled():
    env = Environment()
    s = KubeletInAllocationScenario(env, n_nodes=3)
    ready = s.provision()
    env.run(until=ready)
    assert len(s.kubelets) == 3
    assert all(k.rootless for k in s.kubelets)
    nodes = s.k3s.api.nodes()
    assert all(n.metadata.labels.get("hpc.allocation") == str(s.job.job_id) for n in nodes)
    assert s.steady_state_provision_time < 8.0  # cheaper than a K3s boot


def test_kubelet_in_allocation_pods_stay_inside_allocation():
    m = run_scenario(KubeletInAllocationScenario, n_nodes=2, n_pods=4, seed=3)
    assert m.pods_completed == 4
    assert m.wlm_accounting_coverage == 1.0


def test_bridge_requires_reformulation_flag():
    assert BridgeOperatorScenario.workflow_transparency is False
    assert KNoCScenario.workflow_transparency is True
