"""§6.5's kernel prerequisites, enforced: a legacy site (cgroup v1, no
unprivileged userns) cannot host rootless kubelets in allocations."""

import pytest

from repro.k8s import KubeletError
from repro.kernel import KernelConfig
from repro.scenarios import KubeletInAllocationScenario
from repro.sim import Environment


def test_65_fails_loudly_on_legacy_kernel():
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=2)
    # retrofit the hosts with a legacy kernel config (cgroup v1, userns off)
    legacy = KernelConfig.legacy_hpc()
    for host in scenario.hosts:
        host.kernel.config = legacy
        host.kernel.cgroups.version = 1
    ready = scenario.provision()
    with pytest.raises(KubeletError, match="cgroup v2|user namespaces"):
        env.run(until=ready)


def test_65_requires_delegation_even_on_cgroup_v2():
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=1)
    no_delegation = KernelConfig(cgroup_version=2, cgroup_delegation=False)
    for host in scenario.hosts:
        host.kernel.config = no_delegation
    ready = scenario.provision()
    with pytest.raises(KubeletError, match="delegated"):
        env.run(until=ready)
