"""Serial-vs-sharded equivalence: the runner's whole contract.

Every test compares artifacts *byte for byte* — rendered tables, trace
JSON, report JSON, profile snapshots — because that is the guarantee
``--jobs N`` makes: not "statistically the same", identical.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.shard import (
    ObsConfig,
    WarmSnapshot,
    chaos_seed_sweep,
    merge_profiles,
    parse_seed_range,
    run_cells,
    scenario_matrix,
)
from repro.sim import profile as sim_profile

N_NODES = 2
N_PODS = 4


@pytest.fixture
def _obs_clean():
    yield
    from repro.obs import metrics, trace

    trace.disable()
    trace.reset()
    metrics.registry.enabled = False
    metrics.reset()
    while sim_profile.enable_depth() > 0:
        sim_profile.disable()
    sim_profile.counters.reset()


@pytest.fixture(scope="module")
def snapshot():
    return WarmSnapshot.for_scenario_prefix(n_nodes=N_NODES)


def _matrix_artifacts(jobs, snapshot, start_method=None):
    """Run the §6.6 matrix and return comparable artifacts."""
    from repro.core.tables import render_table
    from repro.obs import metrics as obs_metrics
    from repro.scenarios.evaluate import summary_rows

    sim_profile.counters.reset()
    obs_metrics.registry.reset()
    result = run_cells(
        scenario_matrix(n_nodes=N_NODES, n_pods=N_PODS),
        jobs=jobs,
        obs=ObsConfig(metrics=True),
        snapshot=snapshot,
        start_method=start_method,
    )
    table = render_table(summary_rows(result.values()), "matrix")
    metrics_table = obs_metrics.registry.render_table()
    obs_metrics.registry.reset()
    sim_profile.counters.reset()
    return table, metrics_table, result.profile


def test_matrix_serial_vs_sharded_identical(snapshot, _obs_clean):
    serial = _matrix_artifacts(1, snapshot)
    for jobs in (2, 4):
        assert _matrix_artifacts(jobs, snapshot) == serial


def test_matrix_spawn_matches_fork(snapshot, _obs_clean):
    """Same artifacts under the spawn start method (fresh interpreters)."""
    serial = _matrix_artifacts(1, snapshot)
    assert _matrix_artifacts(2, snapshot, start_method="spawn") == serial


def test_matrix_profile_shows_shard_counters(snapshot, _obs_clean):
    _, _, profile = _matrix_artifacts(2, snapshot)
    n_cells = len(scenario_matrix(n_nodes=N_NODES, n_pods=N_PODS))
    assert profile["shard_cells_run"] == n_cells
    assert profile["snapshot_forks"] == n_cells
    assert profile["warm_replays"] == n_cells  # one replayed build per cell


def _sweep_artifacts(jobs, seeds, snapshot):
    from repro.faults.chaos import chaos_report_document
    from repro.obs import trace as obs_trace
    from repro.obs.export import to_chrome_json, validate_chrome_trace

    obs_trace.tracer.reset()
    result = run_cells(
        chaos_seed_sweep("kubelet-in-allocation", seeds,
                         n_nodes=N_NODES, n_pods=N_PODS),
        jobs=jobs,
        obs=ObsConfig(trace=True),
        snapshot=snapshot,
    )
    doc = chaos_report_document(result.values(), "kubelet-in-allocation")
    trace_text = to_chrome_json(obs_trace.tracer)
    assert validate_chrome_trace(json.loads(trace_text)) == []
    obs_trace.tracer.reset()
    sim_profile.counters.reset()
    return json.dumps(doc, indent=2), trace_text


def test_chaos_sweep_serial_vs_sharded_identical(snapshot, _obs_clean):
    seeds = parse_seed_range("0..3")
    serial = _sweep_artifacts(1, seeds, snapshot)
    for jobs in (2, 4):
        assert _sweep_artifacts(jobs, seeds, snapshot) == serial


def test_runner_restores_parent_state(snapshot, _obs_clean):
    from repro.shard.state import WorldState

    before = WorldState.capture()
    prof_before = sim_profile.counters.snapshot()
    run_cells(
        scenario_matrix(n_nodes=N_NODES, n_pods=N_PODS)[:1],
        jobs=1,
        snapshot=snapshot,
    )
    after = WorldState.capture()
    # The parent world (counters + caches) is untouched; only the merged
    # profile counters landed on top of the saved values.
    assert after.counters == before.counters
    assert set(after.flatten_cache) == set(before.flatten_cache)
    delta = sim_profile.counters.snapshot_delta(prof_before)
    assert delta["shard_cells_run"] == 1
    sim_profile.counters.reset()


# -- the partition-merge property --------------------------------------------

_SNAP = st.fixed_dictionaries(
    {field: st.integers(min_value=0, max_value=10**6)
     for field in sim_profile._FIELDS}
)


@settings(max_examples=50, deadline=None)
@given(snaps=st.lists(_SNAP, max_size=8), cut=st.integers(min_value=0, max_value=8))
def test_profile_merge_is_partition_invariant(snaps, cut):
    """Merging any split of the cells equals merging them all at once —
    the algebraic fact that makes sharded profile totals equal serial."""
    cut = min(cut, len(snaps))
    left, right = snaps[:cut], snaps[cut:]
    two_step = merge_profiles([merge_profiles(left), merge_profiles(right)])
    assert two_step == merge_profiles(snaps)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_seed_partition_merges_to_same_report(data):
    """Any partition of a sweep's seeds, run as separate batches and
    concatenated in order, yields the same report document."""
    from repro.faults.chaos import chaos_report_document

    seeds = list(range(4))
    cut = data.draw(st.integers(min_value=0, max_value=len(seeds)))
    cells = chaos_seed_sweep("kubelet-in-allocation", seeds,
                             n_nodes=N_NODES, n_pods=2)

    whole = run_cells(cells, jobs=1).values()
    parts = (run_cells(cells[:cut], jobs=1).values()
             + run_cells(cells[cut:], jobs=1).values())
    sim_profile.counters.reset()
    assert (chaos_report_document(parts, "kubelet-in-allocation")
            == chaos_report_document(whole, "kubelet-in-allocation"))
