"""World-state capture/install, prefix replay, and warm snapshots."""

import dataclasses

import pytest

from repro.shard.state import (
    COUNTER_SITES,
    WarmSnapshot,
    WorldState,
    _counter_positions,
    replay_prefix,
)


@pytest.fixture
def _world_guard():
    """Restore the process world state after a test that rewinds it."""
    saved = WorldState.capture()
    yield
    saved.install()


def test_capture_is_non_destructive():
    before = _counter_positions()
    WorldState.capture()
    assert _counter_positions() == before


def test_capture_install_roundtrip(_world_guard):
    from repro.fs.tree import FileTree

    checkpoint = WorldState.capture()
    tree = FileTree()
    tree.create_file("/advance/counters", size=10)
    advanced = _counter_positions()
    assert advanced != checkpoint.counters
    checkpoint.install()
    assert _counter_positions() == checkpoint.counters


def test_pristine_counters_all_one():
    pristine = WorldState.pristine()
    assert set(pristine.counters.values()) == {1}
    assert len(pristine.counters) == len(COUNTER_SITES)


def test_replay_prefix_returns_value_and_advances_counters(_world_guard):
    from repro.oci import Builder
    from repro.oci.catalog import BaseImageCatalog

    dockerfile = "FROM alpine:3.18\nRUN write /x 1000\nENTRYPOINT /x"
    checkpoint = WorldState.capture()
    image_cold = Builder(BaseImageCatalog()).build_dockerfile(dockerfile)
    after_cold = _counter_positions()

    # Rewind the counters only — the replay cache keeps the cold entry.
    rewound = dataclasses.replace(
        WorldState.capture(), counters=dict(checkpoint.counters)
    )
    rewound.install()
    image_warm = Builder(BaseImageCatalog()).build_dockerfile(dockerfile)
    # Identical value, and the counters jumped to the cold run's positions
    # — the world cannot tell a replay from a re-run.
    assert image_warm is image_cold
    assert _counter_positions() == after_cold


def test_replay_prefix_counts_warm_replays(_world_guard):
    from repro.sim import profile

    checkpoint = WorldState.capture()
    replay_prefix("test", "k", lambda: object())
    rewound = dataclasses.replace(
        WorldState.capture(), counters=dict(checkpoint.counters)
    )
    rewound.install()
    profile.enable()
    try:
        replay_prefix("test", "k", lambda: object())
        assert profile.counters.warm_replays == 1
    finally:
        profile.disable()


def test_replay_prefix_is_inert_when_counters_differ(_world_guard):
    calls = []
    replay_prefix("test", "k2", lambda: calls.append(1))
    # The world advanced (or at least is not back at the recorded
    # fingerprint), so the same key produces again instead of replaying.
    from repro.fs.tree import FileTree

    FileTree().create_file("/advance", size=1)
    replay_prefix("test", "k2", lambda: calls.append(1))
    assert len(calls) == 2


def test_warm_snapshot_build_is_invisible():
    before = WorldState.capture()
    snapshot = WarmSnapshot.for_scenario_prefix(n_nodes=2)
    after = WorldState.capture()
    assert after.counters == before.counters
    assert snapshot.warm


def test_warm_snapshot_pickle_roundtrip():
    snapshot = WarmSnapshot.for_scenario_prefix(n_nodes=2)
    clone = WarmSnapshot.from_bytes(snapshot.to_bytes())
    assert clone.base_counters == snapshot.base_counters
    assert set(clone.flatten_cache) == set(snapshot.flatten_cache)
    assert set(clone.replay_cache) == set(snapshot.replay_cache)
    assert clone.warm


def test_warm_snapshot_fork_replays_prefix(_world_guard):
    """A forked cell rebuilds the scenario prefix entirely from cache."""
    from repro.sim import Environment, profile
    from repro.scenarios.base import IntegrationScenario

    snapshot = WarmSnapshot.for_scenario_prefix(n_nodes=2)
    profile.enable()
    try:
        snapshot.fork()
        IntegrationScenario(Environment(), n_nodes=2)
        assert profile.counters.snapshot_forks == 1
        assert profile.counters.warm_replays >= 1
    finally:
        profile.disable()
