"""Tests for keys, GPG keyring, Notary, cosign/transparency log, SBOM."""

import pytest

from repro.signing import (
    CosignClient,
    GPGKeyring,
    KeyPair,
    NotaryService,
    SignatureError,
    TransparencyLog,
)


# -- keys -----------------------------------------------------------------------

def test_sign_verify_roundtrip():
    key = KeyPair("alice")
    sig = key.sign(b"payload")
    assert key.verify(b"payload", sig)
    assert not key.verify(b"tampered", sig)


def test_wrong_key_rejected():
    a, b = KeyPair("a"), KeyPair("b")
    sig = a.sign(b"x")
    assert not b.verify(b"x", sig)


def test_key_ids_unique():
    assert KeyPair("same").public_id != KeyPair("same").public_id


# -- GPG keyring -------------------------------------------------------------------

def test_keyring_verify_known_key():
    ring = GPGKeyring()
    key = ring.generate_key("maintainer@site")
    sig = GPGKeyring.sign_detached(key, b"image-manifest")
    assert ring.verify_detached(b"image-manifest", sig) == "maintainer@site"


def test_keyring_unknown_key_rejected():
    ring = GPGKeyring()
    stranger = KeyPair("stranger")
    sig = stranger.sign(b"data")
    with pytest.raises(SignatureError, match="unknown key"):
        ring.verify_detached(b"data", sig)
    ring.import_key(stranger)
    assert ring.verify_detached(b"data", sig) == "stranger"


def test_keyring_bad_signature():
    ring = GPGKeyring()
    key = ring.generate_key("k")
    sig = key.sign(b"original")
    with pytest.raises(SignatureError, match="bad signature"):
        ring.verify_detached(b"altered", sig)


def test_keyring_remove_key():
    ring = GPGKeyring()
    key = ring.generate_key("k")
    ring.remove_key(key.public_id)
    assert not ring.known(key.public_id)


# -- Notary -----------------------------------------------------------------------------

def test_notary_sign_and_verify_target():
    notary = NotaryService()
    key = notary.init_repository("hpc/solver", owner="hpc-team")
    notary.sign_target("hpc/solver", "v1", "sha256:" + "a" * 64, key)
    assert notary.verify_target("hpc/solver", "v1", "sha256:" + "a" * 64)
    assert not notary.verify_target("hpc/solver", "v1", "sha256:" + "b" * 64)
    assert notary.trusted_digest("hpc/solver", "v1") == "sha256:" + "a" * 64


def test_notary_rejects_non_root_signer():
    notary = NotaryService()
    notary.init_repository("repo", owner="owner")
    imposter = KeyPair("imposter")
    with pytest.raises(SignatureError, match="root key"):
        notary.sign_target("repo", "v1", "sha256:" + "c" * 64, imposter)


def test_notary_double_init_rejected():
    notary = NotaryService()
    notary.init_repository("repo", owner="o")
    with pytest.raises(SignatureError):
        notary.init_repository("repo", owner="o2")


def test_notary_unsigned_tag_not_trusted():
    notary = NotaryService()
    notary.init_repository("repo", owner="o")
    assert notary.trusted_digest("repo", "ghost") is None
    assert not notary.verify_target("repo", "ghost", "sha256:" + "d" * 64)


# -- cosign / transparency log -------------------------------------------------------------

def test_cosign_sign_logs_entry():
    log = TransparencyLog()
    client = CosignClient(log)
    key = KeyPair("ci-bot")
    entry = client.sign(key, "sha256:" + "e" * 64)
    assert len(log) == 1
    assert entry.index == 0
    assert client.verify(key, "sha256:" + "e" * 64) == entry


def test_cosign_verify_missing_signature():
    client = CosignClient(TransparencyLog())
    with pytest.raises(SignatureError, match="no logged signature"):
        client.verify(KeyPair("k"), "sha256:" + "f" * 64)


def test_transparency_log_inclusion_proof():
    log = TransparencyLog()
    client = CosignClient(log)
    keys = [KeyPair(f"k{i}") for i in range(5)]
    entries = [client.sign(k, f"sha256:{i:064}") for i, k in enumerate(keys)]
    for entry in entries:
        assert log.verify_inclusion(entry)


def test_transparency_log_detects_fabricated_entry():
    from repro.signing.cosign import LogEntry

    log = TransparencyLog()
    client = CosignClient(log)
    key = KeyPair("k")
    real = client.sign(key, "sha256:" + "1" * 64)
    fake = LogEntry(
        index=0,
        artifact_digest="sha256:" + "2" * 64,
        signature=real.signature,
        entry_hash=real.entry_hash,
    )
    assert not log.verify_inclusion(fake)
