"""Determinism: identical configurations produce identical timelines —
the property every benchmark in this repository leans on."""

from hypothesis import given, settings, strategies as st

from repro.cluster import HostNode
from repro.sim import Environment
from repro.wlm import JobSpec, SlurmController


def run_timeline(jobs):
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(2)]
    ctl = SlurmController(env, hosts)
    submitted = [
        ctl.submit(JobSpec(name=f"j{i}", user_uid=1, nodes=n, duration=d, priority=p))
        for i, (n, d, p) in enumerate(jobs)
    ]
    env.run(until=50_000)
    return [(j.start_time, j.end_time, tuple(j.allocated_nodes)) for j in submitted]


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2),
        st.floats(min_value=1, max_value=100),
        st.integers(min_value=0, max_value=10),
    ),
    min_size=1, max_size=8,
))
def test_identical_runs_identical_timelines(jobs):
    assert run_timeline(jobs) == run_timeline(jobs)


def test_scenario_evaluation_is_deterministic():
    from repro.scenarios import KNoCScenario, run_scenario

    a = run_scenario(KNoCScenario, n_nodes=2, n_pods=3, seed=11)
    b = run_scenario(KNoCScenario, n_nodes=2, n_pods=3, seed=11)
    assert a.pod_startup_latencies == b.pod_startup_latencies
    assert a.makespan == b.makespan
