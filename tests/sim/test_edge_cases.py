"""Sim-core edge cases: falsy event values, defused failures surfacing
through ``run(until=...)``, interrupt vs same-time events, and empty
composite conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


# -- falsy-but-not-None event values ------------------------------------------

@pytest.mark.parametrize("value", [0, "", False, 0.0, [], {}])
def test_process_receives_falsy_event_values(value):
    env = Environment()
    received = []

    def waiter(env, gate):
        got = yield gate
        received.append(got)

    gate = env.event()
    env.process(waiter(env, gate))
    gate.succeed(value)
    env.run()
    assert received == [value]
    assert received[0] is value or received[0] == value


@pytest.mark.parametrize("value", [0, "", False])
def test_falsy_timeout_values_delivered(value):
    env = Environment()
    received = []

    def proc(env):
        got = yield env.timeout(1, value=value)
        received.append(got)

    env.process(proc(env))
    env.run()
    assert received == [value]


def test_falsy_value_from_already_processed_event():
    """The direct-resume fast path (target already processed) must also
    carry falsy values through unchanged."""
    env = Environment()
    gate = env.event()
    gate.succeed(0)
    received = []

    def late(env):
        yield env.timeout(1)
        got = yield gate  # processed long ago
        received.append(got)

    env.process(late(env))
    env.run()
    assert received == [0]


# -- run(until=failed_event) with a defused exception -------------------------

def test_run_until_failed_event_raises_even_if_waiter_defused():
    """A waiter catching the failure defuses it inside the simulation,
    but the caller of run(until=ev) still has to see the exception."""
    env = Environment()
    gate = env.event()
    caught_inside = []

    def waiter(env, gate):
        try:
            yield gate
        except KeyError:
            caught_inside.append(env.now)

    def failer(env, gate):
        yield env.timeout(3)
        gate.fail(KeyError("boom"))

    env.process(waiter(env, gate))
    env.process(failer(env, gate))
    with pytest.raises(KeyError):
        env.run(until=gate)
    assert caught_inside == [3.0]


def test_run_until_failed_process_raises_even_if_waiter_defused():
    env = Environment()

    def crasher(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    p = env.process(crasher(env))

    def watcher(env, p):
        try:
            yield p
        except RuntimeError:
            pass  # defuses the failure inside the simulation

    env.process(watcher(env, p))
    with pytest.raises(RuntimeError, match="crash"):
        env.run(until=p)


# -- interrupt() racing same-time normal events -------------------------------

def test_interrupt_preempts_same_time_timeout():
    """An interrupt scheduled at time t is URGENT: it beats the victim's
    own timeout that fires at the same t, even though the timeout was
    scheduled earlier (lower sequence number)."""
    env = Environment()
    log = []

    def interrupter(env):
        yield env.timeout(5)
        victim.interrupt(cause="race")

    def sleeper(env):
        try:
            got = yield env.timeout(5, value="timeout-won")
            log.append(("timeout", got, env.now))
        except Interrupt as intr:
            log.append(("interrupt", intr.cause, env.now))
            yield env.timeout(1)
            log.append(("resumed", env.now))

    # interrupter created first so its t=5 resume processes first
    env.process(interrupter(env))
    victim = env.process(sleeper(env))
    env.run()
    # the interrupt won the race; the stale timeout resume never fired
    assert log == [("interrupt", "race", 5.0), ("resumed", 6.0)]


def test_interrupt_before_first_resume_is_delivered():
    """Interrupting a process that has not started yet (its bootstrap
    resume is still queued at the same time) must not double-resume."""
    env = Environment()
    log = []

    def victim_proc(env):
        log.append("started")
        yield env.timeout(1)
        log.append("finished")

    def interrupter(env):
        victim.interrupt(cause="early")
        return
        yield  # pragma: no cover - make this a generator

    # interrupter first: its bootstrap resume runs before the victim's
    env.process(interrupter(env))
    victim = env.process(victim_proc(env))
    with pytest.raises(Interrupt):
        env.run()
    assert log == []  # generator never started: interrupt landed first
    assert not victim.is_alive


def test_multiple_interrupts_same_time():
    env = Environment()
    causes = []

    def sleeper(env):
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                causes.append(intr.cause)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt(cause="first")
        victim.interrupt(cause="second")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert causes == ["first", "second"]


# -- empty composite conditions -----------------------------------------------

def test_empty_allof_succeeds_immediately_with_empty_dict():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered
    results = []

    def proc(env, cond):
        got = yield cond
        results.append((env.now, got))

    env.process(proc(env, cond))
    env.run()
    assert results == [(0.0, {})]


def test_empty_anyof_succeeds_immediately_with_empty_dict():
    env = Environment()
    cond = AnyOf(env, [])
    assert cond.triggered
    results = []

    def proc(env, cond):
        got = yield cond
        results.append((env.now, got))

    env.process(proc(env, cond))
    env.run()
    assert results == [(0.0, {})]


def test_interrupt_detaches_from_waited_event():
    """After an interrupt, the event the process was waiting on still
    triggers and processes normally — it just no longer resumes the
    interrupted process."""
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(10, value="late")
        except Interrupt:
            log.append(("interrupted", env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 2.0)]
    assert env.now == 10.0  # the detached timeout still drained the queue
