"""Tests for the DES core: clock, event ordering, processes."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError, Timeout


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc(env):
        got = yield env.timeout(1, value="payload")
        seen.append(got)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(3)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_and_sets_clock():
    env = Environment()
    log = []

    def proc(env):
        while True:
            yield env.timeout(10)
            log.append(env.now)

    env.process(proc(env))
    env.run(until=35)
    assert log == [10.0, 20.0, 30.0]
    assert env.now == 35.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=3)


def test_process_return_value_via_run_until_event():
    env = Environment()

    def proc(env):
        yield env.timeout(4)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42
    assert env.now == 4.0


def test_process_waits_on_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(7)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        log.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [(7.0, "child-result")]


def test_event_succeed_resumes_waiters():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter(env, gate):
        val = yield gate
        woke.append((env.now, val))

    def opener(env, gate):
        yield env.timeout(3)
        gate.succeed("open")

    env.process(waiter(env, gate))
    env.process(opener(env, gate))
    env.run()
    assert woke == [(3.0, "open")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_throws_into_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env, gate):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env, gate))
    gate.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_through_run_until():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run(until=p)


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc(env):
        yield 5  # type: ignore[misc]

    p = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_interrupt_resumes_immediately_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt(cause="preempted")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "preempted")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yielding_already_processed_event_resumes():
    env = Environment()
    log = []
    gate = env.event()
    gate.succeed("early")

    def late_waiter(env, gate):
        yield env.timeout(5)
        val = yield gate
        log.append((env.now, val))

    env.process(late_waiter(env, gate))
    env.run()
    assert log == [(5.0, "early")]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(9)
    assert env.peek() == 9.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_nested_processes_compose():
    env = Environment()

    def level2(env):
        yield env.timeout(1)
        return 2

    def level1(env):
        v = yield env.process(level2(env))
        yield env.timeout(1)
        return v + 1

    def level0(env):
        v = yield env.process(level1(env))
        return v + 1

    p = env.process(level0(env))
    assert env.run(until=p) == 4
    assert env.now == 2.0
