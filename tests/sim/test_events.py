"""Tests for composite events (AllOf/AnyOf) and event state machine."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, SimulationError


def test_allof_waits_for_all():
    env = Environment()
    t1, t2, t3 = env.timeout(1, "a"), env.timeout(5, "b"), env.timeout(3, "c")
    done = []

    def proc(env):
        results = yield AllOf(env, [t1, t2, t3])
        done.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(5.0, ["a", "b", "c"])]


def test_anyof_fires_on_first():
    env = Environment()
    t1, t2 = env.timeout(4, "slow"), env.timeout(2, "fast")
    done = []

    def proc(env):
        results = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(2.0, ["fast"])]


def test_allof_empty_triggers_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_allof_propagates_failure():
    env = Environment()
    good = env.timeout(1)
    bad = env.event()
    caught = []

    def proc(env):
        try:
            yield AllOf(env, [good, bad])
        except KeyError as exc:
            caught.append(env.now)

    env.process(proc(env))

    def failer(env):
        yield env.timeout(0.5)
        bad.fail(KeyError("broken"))

    env.process(failer(env))
    env.run()
    assert caught == [0.5]


def test_allof_with_already_processed_events():
    env = Environment()
    t1 = env.timeout(1, "x")
    env.run(until=2)
    t2 = env.timeout(1, "y")
    done = []

    def proc(env):
        results = yield AllOf(env, [t1, t2])
        done.append(len(results))

    env.process(proc(env))
    env.run()
    assert done == [2]


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_cross_environment_events_rejected():
    env1, env2 = Environment(), Environment()
    t = env2.timeout(1)
    with pytest.raises(SimulationError):
        AllOf(env1, [t])
