"""Tests for the sim-core profiling counters (repro.sim.profile)."""

import pytest

from repro.sim import Environment
from repro.sim import profile


@pytest.fixture(autouse=True)
def _counters_off_after():
    yield
    profile.disable()


def _workload(env):
    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        yield env.process(child(env))
        yield env.timeout(2)

    env.process(parent(env))


def test_counters_disabled_by_default():
    profile.counters.reset()
    env = Environment()
    _workload(env)
    env.run()
    assert profile.counters.events_processed == 0
    assert profile.counters.processes_spawned == 0


def test_enable_resets_and_counts():
    env = Environment()
    prof = profile.enable()
    _workload(env)
    env.run()
    profile.disable()
    assert prof.processes_spawned == 2
    assert prof.events_processed > 0
    # a drained queue processed everything it scheduled
    assert prof.events_scheduled == prof.events_processed
    assert prof.heap_pops == prof.heap_pushes
    assert prof.immediate_pops == prof.immediate_pushes
    assert prof.peak_queue_depth >= 1


def test_timeouts_hit_heap_and_triggers_hit_fifo():
    env = Environment()
    prof = profile.enable()
    env.timeout(5)  # positive delay: heap
    ev = env.event()
    ev.succeed()  # zero delay: immediate FIFO
    profile.disable()
    assert prof.heap_pushes == 1
    assert prof.immediate_pushes == 1


def test_direct_resumes_replace_carrier_events():
    env = Environment()
    prof = profile.enable()

    def proc(env):
        gate = env.event()
        gate.succeed("x")
        got = yield gate  # already-triggered: still resumes via the queue
        return got

    env.process(proc(env))
    env.run()
    profile.disable()
    # bootstrap resume at least; no carrier Events scheduled for it
    assert prof.direct_resumes >= 1


def test_snapshot_is_plain_dict():
    prof = profile.enable()
    snap = prof.snapshot()
    profile.disable()
    assert isinstance(snap, dict)
    assert set(snap) >= {
        "events_scheduled",
        "events_processed",
        "heap_pushes",
        "heap_pops",
        "processes_spawned",
        "peak_queue_depth",
    }


# -- enable/disable re-entrancy (regression: a nested enable/disable pair
#    used to clobber the outer caller's counters and switch counting off) --


def test_nested_enable_does_not_reset_outer_counters():
    prof = profile.enable()
    env = Environment()
    _workload(env)
    env.run()
    outer_events = prof.events_processed
    assert outer_events > 0

    inner = profile.enable()  # nested consumer (reset must be suppressed)
    assert inner is prof
    assert prof.events_processed == outer_events
    profile.disable()

    # outer scope still counting after the inner pair unwinds
    assert prof.enabled
    env2 = Environment()
    _workload(env2)
    env2.run()
    assert prof.events_processed > outer_events
    profile.disable()
    assert not prof.enabled


def test_enable_depth_tracks_nesting():
    assert profile.enable_depth() == 0
    profile.enable()
    profile.enable()
    assert profile.enable_depth() == 2
    profile.disable()
    assert profile.enable_depth() == 1
    assert profile.counters.enabled
    profile.disable()
    assert profile.enable_depth() == 0
    assert not profile.counters.enabled


def test_unbalanced_disable_is_harmless():
    profile.disable()
    profile.disable()
    assert profile.enable_depth() == 0
    prof = profile.enable()  # still works afterwards
    assert prof.enabled
    profile.disable()


def test_snapshot_delta_measures_a_sub_workload():
    prof = profile.enable()
    env = Environment()
    _workload(env)
    env.run()
    baseline = prof.snapshot()

    profile.enable()  # inner harness: no reset
    env2 = Environment()
    _workload(env2)
    env2.run()
    delta = prof.snapshot_delta(baseline)
    profile.disable()
    profile.disable()

    assert delta["processes_spawned"] == 2
    assert delta["events_processed"] > 0
    # the outer total is the baseline plus the inner delta
    assert prof.events_processed == baseline["events_processed"] + delta["events_processed"]
