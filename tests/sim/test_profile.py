"""Tests for the sim-core profiling counters (repro.sim.profile)."""

import pytest

from repro.sim import Environment
from repro.sim import profile


@pytest.fixture(autouse=True)
def _counters_off_after():
    yield
    profile.disable()


def _workload(env):
    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        yield env.process(child(env))
        yield env.timeout(2)

    env.process(parent(env))


def test_counters_disabled_by_default():
    profile.counters.reset()
    env = Environment()
    _workload(env)
    env.run()
    assert profile.counters.events_processed == 0
    assert profile.counters.processes_spawned == 0


def test_enable_resets_and_counts():
    env = Environment()
    prof = profile.enable()
    _workload(env)
    env.run()
    profile.disable()
    assert prof.processes_spawned == 2
    assert prof.events_processed > 0
    # a drained queue processed everything it scheduled
    assert prof.events_scheduled == prof.events_processed
    assert prof.heap_pops == prof.heap_pushes
    assert prof.immediate_pops == prof.immediate_pushes
    assert prof.peak_queue_depth >= 1


def test_timeouts_hit_heap_and_triggers_hit_fifo():
    env = Environment()
    prof = profile.enable()
    env.timeout(5)  # positive delay: heap
    ev = env.event()
    ev.succeed()  # zero delay: immediate FIFO
    profile.disable()
    assert prof.heap_pushes == 1
    assert prof.immediate_pushes == 1


def test_direct_resumes_replace_carrier_events():
    env = Environment()
    prof = profile.enable()

    def proc(env):
        gate = env.event()
        gate.succeed("x")
        got = yield gate  # already-triggered: still resumes via the queue
        return got

    env.process(proc(env))
    env.run()
    profile.disable()
    # bootstrap resume at least; no carrier Events scheduled for it
    assert prof.direct_resumes >= 1


def test_snapshot_is_plain_dict():
    prof = profile.enable()
    snap = prof.snapshot()
    profile.disable()
    assert isinstance(snap, dict)
    assert set(snap) >= {
        "events_scheduled",
        "events_processed",
        "heap_pushes",
        "heap_pops",
        "processes_spawned",
        "peak_queue_depth",
    }
