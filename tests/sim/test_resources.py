"""Tests for Resource, Container, and Store."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    timeline = []

    def worker(env, res, tag):
        req = res.request()
        yield req
        timeline.append((env.now, tag, "start"))
        yield env.timeout(10)
        res.release(req)
        timeline.append((env.now, tag, "end"))

    for tag in ("a", "b", "c"):
        env.process(worker(env, res, tag))
    env.run()
    starts = {tag: t for t, tag, kind in timeline if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 10.0}


def test_resource_fifo_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, res, tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in ("first", "second", "third"):
        env.process(worker(env, res, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_without_hold_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = res.request()
    res.release(granted)
    with pytest.raises(SimulationError):
        res.release(granted)


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_mean_queue_length_under_contention():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env, res):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    for _ in range(3):
        env.process(worker(env, res))
    env.run()
    # Queue holds 2 waiters for 10s, 1 waiter for 10s, 0 for 10s = 30
    # waiter-seconds over 30s -> mean 1.0.
    assert res.mean_queue_length() == pytest.approx(1.0)


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    tank.put(25)
    assert tank.level == 75
    tank.get(70)
    assert tank.level == 5


def test_container_get_blocks_until_put():
    env = Environment()
    tank = Container(env, capacity=10, init=0)
    log = []

    def consumer(env, tank):
        yield tank.get(5)
        log.append(env.now)

    def producer(env, tank):
        yield env.timeout(3)
        tank.put(5)

    env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert log == [3.0]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer(env, tank):
        yield tank.put(5)
        log.append(env.now)

    def consumer(env, tank):
        yield env.timeout(2)
        tank.get(5)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert log == [2.0]


def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=10)


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [0, 1, 2]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer(env, store):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert log == [("a", 0.0), ("b", 5.0)]
