"""Tests for deterministic RNG sub-streams."""

from repro.sim import DeterministicRNG


def test_same_seed_same_draws():
    a, b = DeterministicRNG(7), DeterministicRNG(7)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_differ():
    a, b = DeterministicRNG(1), DeterministicRNG(2)
    assert a.uniform() != b.uniform()


def test_named_streams_are_independent():
    rng = DeterministicRNG(3)
    s1_first = rng.stream("io").random()
    rng2 = DeterministicRNG(3)
    # Drawing from another stream first must not perturb "io".
    rng2.stream("net").random()
    assert rng2.stream("io").random() == s1_first


def test_streams_cached():
    rng = DeterministicRNG(0)
    assert rng.stream("x") is rng.stream("x")


def test_lognormal_jitter_near_one():
    rng = DeterministicRNG(11)
    draws = [rng.lognormal_jitter(0.05) for _ in range(200)]
    assert all(0.7 < d < 1.4 for d in draws)


def test_choice_and_integers_in_range():
    rng = DeterministicRNG(5)
    assert rng.choice(["a", "b", "c"]) in {"a", "b", "c"}
    assert 0 <= rng.integers(0, 10) < 10
