"""Tests for the tickless wakeup primitive (`repro.sim.signal`).

The ordering tests mirror the interrupt-race tests in
``test_edge_cases.py``: a Signal wakeup must land in exactly the queue
slot a hand-rolled wakeup event would have used, because the tickless
control loops rely on that to keep virtual-time results bit-identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Signal, next_tick
from repro.sim.events import SimulationError


# -- wait(): event-style waiters ----------------------------------------------

def test_fire_wakes_multiple_waiters_in_order():
    env = Environment()
    sig = Signal(env)
    log = []

    def waiter(env, tag):
        got = yield sig.wait()
        log.append((tag, got, env.now))

    def producer(env):
        yield env.timeout(3)
        assert sig.waiting == 3
        woken = sig.fire("go")
        assert woken == 3

    for tag in ("a", "b", "c"):
        env.process(waiter(env, tag))
    env.process(producer(env))
    env.run()
    # all three wake at the fire time, in registration order
    assert log == [("a", "go", 3.0), ("b", "go", 3.0), ("c", "go", 3.0)]


def test_fire_with_no_waiters_is_lost_without_latch():
    env = Environment()
    sig = Signal(env)
    assert sig.fire("nobody-home") == 0
    log = []

    def late_waiter(env):
        got = yield sig.wait()
        log.append(got)

    env.process(late_waiter(env))
    env.run()
    assert log == []  # the pre-registration fire was not remembered
    assert sig.waiting == 1


def test_latch_remembers_unheard_fire():
    env = Environment()
    sig = Signal(env, latch=True)
    assert sig.fire("ding") == 0
    log = []

    def late_waiter(env):
        got = yield sig.wait()
        log.append((got, env.now))
        got = yield sig.wait()
        log.append((got, env.now))

    def producer(env):
        yield env.timeout(2)
        sig.fire("dong")

    env.process(late_waiter(env))
    env.process(producer(env))
    env.run()
    # first wait consumed the latched fire at t=0, second the live one
    assert log == [("ding", 0.0), ("dong", 2.0)]


def test_latch_coalesces_fires_while_waiter_unprocessed():
    """Two rings in the same instant == one bell ring: the second fire
    lands while the first's waiter event is still queued, so it must be
    absorbed rather than latched for the *next* wait."""
    env = Environment()
    sig = Signal(env, latch=True)
    passes = []

    def loop(env):
        while True:
            yield sig.wait()
            passes.append(env.now)
            yield env.timeout(1)

    def producer(env):
        yield env.timeout(5)
        sig.fire()
        sig.fire()  # same instant, waiter not yet resumed: coalesced

    env.process(loop(env))
    env.process(producer(env))
    env.run(until=20)
    assert passes == [5.0]  # one pass, not two


def test_cancel_deregisters_waiter():
    env = Environment()
    sig = Signal(env)
    event = sig.wait()
    assert sig.waiting == 1
    assert sig.cancel(event) is True
    assert sig.waiting == 0
    assert sig.cancel(event) is False  # idempotent
    sig.fire()
    assert not event.triggered


# -- park(): direct-resume waiting --------------------------------------------

def test_park_requires_active_process():
    env = Environment()
    sig = Signal(env)
    with pytest.raises(SimulationError):
        sig.park()


def test_parked_process_woken_by_fire():
    env = Environment()
    sig = Signal(env)
    log = []

    def sleeper(env):
        token = sig.park()
        cause = yield token
        sig.unpark(token)
        log.append((cause is Signal.FIRED, env.now))

    def producer(env):
        yield env.timeout(7)
        assert sig.fire() == 1

    env.process(sleeper(env))
    env.process(producer(env))
    env.run()
    assert log == [(True, 7.0)]


def test_park_deadline_delivers_none():
    env = Environment()
    sig = Signal(env)
    log = []

    def sleeper(env):
        token = sig.park(4.0)
        cause = yield token
        sig.unpark(token)
        log.append((cause, env.now))

    env.process(sleeper(env))
    env.run()
    assert log == [(None, 4.0)]


def test_fired_sleeper_resumes_before_producers_next_event():
    """fire() queues the direct resume immediately: the woken process
    runs before anything the producer schedules *after* firing — the
    same slot a pre-queued wakeup event would have occupied."""
    env = Environment()
    sig = Signal(env)
    log = []

    def sleeper(env):
        token = sig.park()
        yield token
        sig.unpark(token)
        log.append("woken")

    def producer(env):
        yield env.timeout(1)
        sig.fire()
        yield env.timeout(0)
        log.append("producer-continued")

    env.process(sleeper(env))
    env.process(producer(env))
    env.run()
    assert log == ["woken", "producer-continued"]


def test_deadline_beats_same_time_fire():
    """Mirror of the interrupt-race tests: the park deadline was
    scheduled at park time (older sequence number), so when a producer
    fires at exactly the deadline instant, the deadline event processes
    first and the sleeper observes a timeout, not a wakeup."""
    env = Environment()
    sig = Signal(env)
    log = []

    def sleeper(env):
        token = sig.park(5.0)
        cause = yield token
        sig.unpark(token)
        log.append("fired" if cause is Signal.FIRED else "deadline")

    def producer(env):
        yield env.timeout(5.0)
        sig.fire()

    env.process(sleeper(env))
    env.process(producer(env))
    env.run()
    assert log == ["deadline"]
    # the same-time fire found nobody parked anymore
    assert sig.waiting == 0


def test_stale_park_registration_is_skipped():
    """A sleeper that wakes via its deadline but forgets to unpark must
    not be resumed by a later fire while it waits on something else."""
    env = Environment()
    sig = Signal(env)
    log = []

    def sloppy_sleeper(env):
        token = sig.park(1.0)
        cause = yield token
        assert cause is None  # deadline, but no unpark (sloppy)
        got = yield env.timeout(10, value="slept-through")
        log.append((got, env.now))

    def producer(env):
        yield env.timeout(5)
        assert sig.fire() == 0  # stale registration: nobody truly parked

    env.process(sloppy_sleeper(env))
    env.process(producer(env))
    env.run()
    assert log == [("slept-through", 11.0)]


# -- timeout_until ------------------------------------------------------------

def test_timeout_until_rejects_past():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.timeout_until(4.0)


def test_timeout_until_exact_time():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout_until(2.5, value="at-2.5")
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [2.5]


# -- tick-boundary alignment --------------------------------------------------

@given(
    epoch=st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                    allow_infinity=False),
    interval=st.sampled_from([0.5, 1.0, 5.0, 10.0, 0.3]),
    n_idle=st.integers(min_value=0, max_value=200),
    frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
@settings(max_examples=200, deadline=None)
def test_next_tick_matches_sequential_spinner(epoch, interval, n_idle, frac):
    """next_tick must replay the spinner's float additions exactly: the
    boundary it returns is bit-identical to the tick a polling loop
    would wake at, for a wakeup landing anywhere inside an interval."""
    # where the spinner's ticks actually land (sequential addition)
    t = epoch
    ticks = []
    for _ in range(n_idle + 2):
        t += interval
        ticks.append(t)
    # a wakeup strictly inside (ticks[n_idle-1], ticks[n_idle]]
    prev = ticks[n_idle - 1] if n_idle else epoch
    fire_at = prev + (ticks[n_idle] - prev) * frac
    if not prev <= fire_at < ticks[n_idle]:
        return  # degenerate float case: interval lost to rounding
    boundary, skipped = next_tick(epoch, interval, fire_at)
    assert boundary == ticks[n_idle]  # bit-identical, not just approx
    assert skipped == n_idle


def test_next_tick_on_boundary_is_strictly_after():
    boundary, skipped = next_tick(0.0, 0.5, 1.0)
    assert boundary == 1.5  # a wake exactly on a tick resumes at the next
    assert skipped == 2


def test_next_tick_rejects_bad_interval():
    with pytest.raises(ValueError):
        next_tick(0.0, 0.0, 1.0)
