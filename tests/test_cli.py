"""Tests for the CLI."""

import pytest

from repro.cli import main


def test_tables_all(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 5" in out
    assert "docker" in out and "harbor" in out


def test_tables_single(capsys):
    assert main(["tables", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 1" not in out


def test_decide(capsys):
    assert main(["decide", "hardened"]) == 0
    out = capsys.readouterr().out
    assert "security-hardened-center" in out
    assert "apptainer" in out


def test_decide_with_tables(capsys):
    assert main(["decide", "conservative", "--tables"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_scenarios_small(capsys):
    assert main(["scenarios", "--nodes", "2", "--pods", "2"]) == 0
    out = capsys.readouterr().out
    assert "kubelet-in-allocation" in out
    assert "§6.6" in out


def test_startup(capsys):
    assert main(["startup"]) == 0
    out = capsys.readouterr().out
    for engine in ("docker", "sarus", "enroot"):
        assert engine in out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["bogus"])
