"""Tests for the CLI."""

import json

import pytest

from repro.cli import main


def test_tables_all(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 5" in out
    assert "docker" in out and "harbor" in out


def test_tables_single(capsys):
    assert main(["tables", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 1" not in out


def test_decide(capsys):
    assert main(["decide", "hardened"]) == 0
    out = capsys.readouterr().out
    assert "security-hardened-center" in out
    assert "apptainer" in out


def test_decide_with_tables(capsys):
    assert main(["decide", "conservative", "--tables"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_scenarios_small(capsys):
    assert main(["scenarios", "--nodes", "2", "--pods", "2"]) == 0
    out = capsys.readouterr().out
    assert "kubelet-in-allocation" in out
    assert "§6.6" in out


def test_startup(capsys):
    assert main(["startup"]) == 0
    out = capsys.readouterr().out
    for engine in ("docker", "sarus", "enroot"):
        assert engine in out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["bogus"])


# -- observability subcommands ------------------------------------------------


@pytest.fixture
def _obs_clean():
    yield
    from repro.obs import metrics, timeseries, trace
    from repro.sim import profile

    trace.disable()
    trace.reset()
    metrics.registry.enabled = False
    metrics.reset()
    timeseries.disable()
    timeseries.reset()
    while profile.enable_depth() > 0:
        profile.disable()
    profile.counters.reset()


def test_trace_subcommand_writes_valid_trace(tmp_path, capsys, _obs_clean):
    from repro.obs.export import validate_file

    out = tmp_path / "trace.json"
    code = main(["trace", "kubelet_in_allocation", "--out", str(out),
                 "--nodes", "2", "--pods", "2"])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "subsystems" in stdout and "perfetto" in stdout
    assert validate_file(str(out)) == 0


def test_trace_subcommand_accepts_hyphenated_name(tmp_path, _obs_clean):
    out = tmp_path / "trace.json"
    assert main(["trace", "kubelet-in-allocation", "--out", str(out),
                 "--nodes", "2", "--pods", "2"]) == 0
    assert out.exists()


def test_trace_subcommand_rejects_unknown_scenario(tmp_path, capsys, _obs_clean):
    assert main(["trace", "bogus", "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_trace_leaves_obs_disabled(tmp_path, _obs_clean):
    from repro.obs import metrics, trace

    main(["trace", "kubelet_in_allocation", "--out", str(tmp_path / "t.json"),
          "--nodes", "2", "--pods", "2"])
    assert not trace.tracer.enabled
    assert not metrics.registry.enabled


def test_scenarios_metrics_flag(capsys, _obs_clean):
    assert main(["scenarios", "--nodes", "2", "--pods", "2", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metric" in out
    assert "sim.events_processed" in out
    assert "k8s.pods_started" in out


def test_startup_metrics_flag(capsys, _obs_clean):
    assert main(["startup", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert 'engine.pulls{engine="docker"}' in out
    assert 'monitor.background_cpu_fraction{monitor="dockerd"}' in out


# -- sharded execution (--jobs / --seeds / --list) ----------------------------


def test_scenarios_list(capsys):
    assert main(["scenarios", "--list"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines() == sorted(out.splitlines())
    assert "kubelet-in-allocation" in out


def test_chaos_list(capsys):
    assert main(["chaos", "--list"]) == 0
    assert "kubelet-in-allocation" in capsys.readouterr().out


def test_chaos_without_scenario_errors(capsys):
    assert main(["chaos"]) == 2
    assert "scenario name" in capsys.readouterr().err


def test_scenarios_jobs_output_identical(capsys, _obs_clean):
    assert main(["scenarios", "--nodes", "2", "--pods", "2"]) == 0
    serial = capsys.readouterr().out
    assert main(["scenarios", "--nodes", "2", "--pods", "2", "--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_chaos_sweep_report_and_trace(tmp_path, capsys, _obs_clean):
    report = tmp_path / "report.json"
    trace = tmp_path / "trace.json"
    assert main([
        "chaos", "kubelet-in-allocation", "--seeds", "0..2",
        "--nodes", "2", "--pods", "2",
        "--trace", str(trace), "--out", str(report),
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep: kubelet-in-allocation seeds 0..2 (3 run(s))" in out
    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro-chaos-report/2"
    assert doc["seeds"] == [0, 1, 2]
    assert len(doc["reports"]) == 3
    assert doc["aggregate"]["runs"] == 3
    assert doc["aggregate"]["clean"] is True
    assert json.loads(trace.read_text())["traceEvents"]


def test_chaos_sweep_jobs_artifacts_identical(tmp_path, capsys, _obs_clean):
    def run(jobs):
        report = tmp_path / f"report{jobs}.json"
        trace = tmp_path / f"trace{jobs}.json"
        assert main([
            "chaos", "kubelet-in-allocation", "--seeds", "0..3",
            "--nodes", "2", "--pods", "2", "--jobs", str(jobs),
            "--trace", str(trace), "--out", str(report),
        ]) == 0
        return capsys.readouterr().out, report.read_bytes(), trace.read_bytes()

    serial_out, serial_report, serial_trace = run(1)
    sharded_out, sharded_report, sharded_trace = run(4)
    assert sharded_report == serial_report
    assert sharded_trace == serial_trace
    # stdout differs only in the artifact paths we chose above
    assert ([l for l in sharded_out.splitlines() if str(tmp_path) not in l]
            == [l for l in serial_out.splitlines() if str(tmp_path) not in l])


def test_chaos_sweep_rejects_save_plan(tmp_path, capsys):
    assert main([
        "chaos", "kubelet-in-allocation", "--seeds", "0..1",
        "--save-plan", str(tmp_path / "plan.json"),
    ]) == 2
    assert "--save-plan" in capsys.readouterr().err


def test_chaos_single_seed_writes_report(tmp_path, capsys, _obs_clean):
    report = tmp_path / "report.json"
    assert main([
        "chaos", "kubelet-in-allocation", "--seed", "7",
        "--nodes", "2", "--pods", "2",
        "--trace", str(tmp_path / "t.json"), "--out", str(report),
    ]) == 0
    doc = json.loads(report.read_text())
    assert doc["seeds"] == [7]
    assert doc["reports"][0]["scenario"] == "kubelet-in-allocation"


# -- slo / time-series flags --------------------------------------------------


def test_slo_writes_scorecard_and_timeseries(tmp_path, capsys, _obs_clean):
    scorecard = tmp_path / "scorecard.json"
    series = tmp_path / "series.json"
    code = main(["slo", "kubelet-in-allocation", "--seed", "42",
                 "--out", str(scorecard), "--timeseries", str(series)])
    assert code == 0
    out = capsys.readouterr().out
    assert "SLO scorecard: kubelet-in-allocation" in out
    assert "detection latency" in out
    doc = json.loads(scorecard.read_text())
    assert doc["schema"] == "repro-slo-scorecard/1"
    assert doc["interval"] == 5.0
    assert doc["detection"].get("node_crash") is not None
    ts = json.loads(series.read_text())
    assert ts["schema"] == "repro-timeseries/1"
    assert ts["samples"] > 0
    assert any(name.startswith("wlm.") for name in ts["series"])


def test_slo_double_run_byte_identical(tmp_path, capsys, _obs_clean):
    def run(tag):
        scorecard = tmp_path / f"sc{tag}.json"
        assert main(["slo", "kubelet-in-allocation", "--seed", "3",
                     "--nodes", "2", "--pods", "2",
                     "--out", str(scorecard)]) == 0
        return capsys.readouterr().out, scorecard.read_bytes()

    out_1, bytes_1 = run(1)
    out_2, bytes_2 = run(2)
    assert bytes_1 == bytes_2
    assert ([l for l in out_1.splitlines() if str(tmp_path) not in l]
            == [l for l in out_2.splitlines() if str(tmp_path) not in l])


def test_slo_list_and_missing_scenario(capsys, _obs_clean):
    assert main(["slo", "--list"]) == 0
    assert "kubelet-in-allocation" in capsys.readouterr().out
    assert main(["slo"]) == 2
    assert "scenario name" in capsys.readouterr().err


def test_slo_accepts_rules_file(tmp_path, capsys, _obs_clean):
    from repro.obs.slo import SloRule, SloRuleSet

    rules = tmp_path / "rules.json"
    SloRuleSet([SloRule(name="only-requeues", series="wlm.job_requeues.rate",
                        value=0.0)]).to_file(str(rules))
    assert main(["slo", "kubelet-in-allocation", "--seed", "42",
                 "--rules", str(rules)]) == 0
    out = capsys.readouterr().out
    assert "only-requeues" in out
    assert "retry-storm" not in out  # default rules were replaced


def test_slo_leaves_obs_disabled(tmp_path, _obs_clean):
    from repro.obs import metrics, timeseries

    main(["slo", "kubelet-in-allocation", "--seed", "3",
          "--nodes", "2", "--pods", "2"])
    assert not metrics.registry.enabled
    assert not timeseries.recorder.enabled
    assert timeseries.recorder.snapshot() == {}


def test_chaos_sample_interval_reports_detection(tmp_path, capsys, _obs_clean):
    assert main(["chaos", "kubelet-in-allocation", "--seed", "42",
                 "--sample-interval", "5",
                 "--trace", str(tmp_path / "t.json")]) == 0
    out = capsys.readouterr().out
    assert "alerts fired:" in out
    assert "node_crash=" in out
    doc = json.loads((tmp_path / "t.json").read_text())
    assert any(e.get("name") == "slo.alert" for e in doc["traceEvents"])


def test_chaos_sweep_timeseries_jobs_identical(tmp_path, capsys, _obs_clean):
    def run(jobs):
        series = tmp_path / f"series{jobs}.json"
        assert main([
            "chaos", "kubelet-in-allocation", "--seeds", "0..2",
            "--nodes", "2", "--pods", "2", "--jobs", str(jobs),
            "--sample-interval", "10",
            "--trace", str(tmp_path / f"t{jobs}.json"),
            "--timeseries", str(series),
        ]) == 0
        capsys.readouterr()
        return series.read_bytes()

    assert run(1) == run(2)


def test_metrics_out_roundtrip(tmp_path, _obs_clean):
    first = tmp_path / "m1.json"
    second = tmp_path / "m2.json"
    argv = ["scenarios", "--nodes", "2", "--pods", "2"]
    assert main([*argv, "--metrics-out", str(first)]) == 0
    assert main([*argv, "--metrics-out", str(second)]) == 0
    doc = json.loads(first.read_text())
    assert doc["schema"] == "repro-metrics/1"
    assert any(k.startswith("k8s.pods_started") for k in doc["series"])
    assert first.read_bytes() == second.read_bytes()


def test_startup_metrics_out(tmp_path, capsys, _obs_clean):
    path = tmp_path / "metrics.json"
    assert main(["startup", "--metrics-out", str(path)]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert any(k.startswith("engine.pulls") for k in doc["series"])


def test_fleet_timeseries_includes_tenant_series(tmp_path, capsys, _obs_clean):
    path = tmp_path / "series.json"
    assert main(["fleet", "--tenants", "4", "--nodes", "8", "--starts", "200",
                 "--shards", "2", "--day", "300",
                 "--sample-interval", "10", "--timeseries", str(path)]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    names = list(doc["series"])
    assert any(n.startswith("fleet.pending{shard=") for n in names)
    # 4 tenants is under the per-tenant cap, so tenant series exist
    assert any(n.startswith("fleet.tenant.starts{tenant=") for n in names)


def test_replay_timeseries_out(tmp_path, capsys, _obs_clean):
    path = tmp_path / "series.json"
    assert main(["replay", "--tenants", "2", "--nodes", "4", "--starts", "30",
                 "--shards", "2", "--day", "300",
                 "--timeseries", str(path)]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert any(n.startswith("replay.inflight{shard=") for n in doc["series"])
