"""Tests for the CLI."""

import pytest

from repro.cli import main


def test_tables_all(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 5" in out
    assert "docker" in out and "harbor" in out


def test_tables_single(capsys):
    assert main(["tables", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "Table 1" not in out


def test_decide(capsys):
    assert main(["decide", "hardened"]) == 0
    out = capsys.readouterr().out
    assert "security-hardened-center" in out
    assert "apptainer" in out


def test_decide_with_tables(capsys):
    assert main(["decide", "conservative", "--tables"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_scenarios_small(capsys):
    assert main(["scenarios", "--nodes", "2", "--pods", "2"]) == 0
    out = capsys.readouterr().out
    assert "kubelet-in-allocation" in out
    assert "§6.6" in out


def test_startup(capsys):
    assert main(["startup"]) == 0
    out = capsys.readouterr().out
    for engine in ("docker", "sarus", "enroot"):
        assert engine in out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["bogus"])


# -- observability subcommands ------------------------------------------------


@pytest.fixture
def _obs_clean():
    yield
    from repro.obs import metrics, trace
    from repro.sim import profile

    trace.disable()
    trace.reset()
    metrics.registry.enabled = False
    metrics.reset()
    while profile.enable_depth() > 0:
        profile.disable()
    profile.counters.reset()


def test_trace_subcommand_writes_valid_trace(tmp_path, capsys, _obs_clean):
    from repro.obs.export import validate_file

    out = tmp_path / "trace.json"
    code = main(["trace", "kubelet_in_allocation", "--out", str(out),
                 "--nodes", "2", "--pods", "2"])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "subsystems" in stdout and "perfetto" in stdout
    assert validate_file(str(out)) == 0


def test_trace_subcommand_accepts_hyphenated_name(tmp_path, _obs_clean):
    out = tmp_path / "trace.json"
    assert main(["trace", "kubelet-in-allocation", "--out", str(out),
                 "--nodes", "2", "--pods", "2"]) == 0
    assert out.exists()


def test_trace_subcommand_rejects_unknown_scenario(tmp_path, capsys, _obs_clean):
    assert main(["trace", "bogus", "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_trace_leaves_obs_disabled(tmp_path, _obs_clean):
    from repro.obs import metrics, trace

    main(["trace", "kubelet_in_allocation", "--out", str(tmp_path / "t.json"),
          "--nodes", "2", "--pods", "2"])
    assert not trace.tracer.enabled
    assert not metrics.registry.enabled


def test_scenarios_metrics_flag(capsys, _obs_clean):
    assert main(["scenarios", "--nodes", "2", "--pods", "2", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metric" in out
    assert "sim.events_processed" in out
    assert "k8s.pods_started" in out


def test_startup_metrics_flag(capsys, _obs_clean):
    assert main(["startup", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert 'engine.pulls{engine="docker"}' in out
    assert 'monitor.background_cpu_fraction{monitor="dockerd"}' in out
