"""End-to-end: a full adaptive-containerization deployment lifecycle.

One test walks the whole paper: site stand-up from requirements, CI-built
and cosign-signed images behind a pull-through proxy, a containerized
workflow on the WLM, module generation, and the Kubernetes path via the
§6.5 scenario — the integration the survey's 'adaptive containerization'
term describes.
"""

import pytest

from repro.core import SiteRequirements, Workflow, WorkflowStep, generate_module_file
from repro.core.ci import ContainerCI, RegressionCheck
from repro.cluster import Site
from repro.registry import OCIDistributionRegistry, PullThroughProxy, RateLimiter
from repro.signing import CosignClient, KeyPair, TransparencyLog
from repro.sim import Environment


def test_full_adaptive_containerization_lifecycle():
    env = Environment()

    # 1. Stand up the site from its requirements (engine auto-selected).
    site = Site(env, SiteRequirements.cloud_converged_center(), n_nodes=3)
    assert site.engine_cls.info.name == "podman"

    # 2. CI builds, gates, signs, and publishes the workflow images.
    log = TransparencyLog()
    ci_key = KeyPair("site-ci")
    ci = ContainerCI(site.registry, signing_key=ci_key, cosign=CosignClient(log))
    ci.track(
        "bio/aligner", "v1",
        "FROM ubuntu:22.04\nRUN write /opt/aligner 4000000\nENTRYPOINT /opt/aligner",
        checks=[RegressionCheck("binary", lambda fs, img: fs.exists("/opt/aligner"))],
    )
    ci.track(
        "bio/caller", "v1",
        "FROM python:3.11\nRUN pip-install caller 60\nENTRYPOINT python3.11",
        checks=[RegressionCheck("pkg", lambda fs, img: fs.num_files(
            "/usr/lib/python3.11/site-packages/caller") == 60)],
    )
    reports = ci.run_pipeline()
    assert all(r["action"] == "rebuilt" for r in reports)
    assert len(log) == 2

    # 3. Mirror a community image through a rate-limited upstream.
    upstream = OCIDistributionRegistry(
        name="hub", rate_limiter=RateLimiter(max_requests=10, window_seconds=3600)
    )
    upstream.push_image("community/qc", "stable",
                        ci.builder.build_dockerfile("FROM alpine\nRUN write /opt/qc 500000"))
    proxy = PullThroughProxy(upstream)
    image, _ = proxy.pull_image("community/qc", "stable")
    site.registry.push_image("community/qc", "stable", image)

    # 4. Run the workflow on the WLM with the site's engines.
    wf = Workflow("e2e", [
        WorkflowStep(name="qc", image="r.site/community/qc:stable", duration=30, cores=2),
        WorkflowStep(name="align", image="r.site/bio/aligner:v1", duration=90,
                     cores=16, after=("qc",)),
        WorkflowStep(name="call", image="r.site/bio/caller:v1", duration=60,
                     cores=8, after=("align",)),
    ])
    proc = site.run_workflow(wf)
    makespan = env.run(until=proc)
    assert makespan >= 180
    records = site.wlm.accounting.by_comment_prefix("workflow:e2e/")
    assert len(records) == 3
    assert all(r.state == "COMPLETED" for r in records)

    # 5. Expose the aligner as an environment module (shpc route).
    aligner = ci._tracked[("bio/aligner", "v1")]
    module = generate_module_file(site.engine_cls, "bio/aligner:v1",
                                  ci.builder.build_dockerfile(aligner.dockerfile).config)
    assert 'set_alias("aligner"' in module

    # 6. Kubernetes workflows via the selected §6.5 scenario.
    from repro.scenarios import run_scenario
    from repro.core import select_stack

    scenario_cls = select_stack(site.requirements)["scenario"]
    metrics = run_scenario(scenario_cls, n_nodes=2, n_pods=4, seed=2)
    assert metrics.pods_completed == 4
    assert metrics.satisfies_section6_requirements()
