"""Property-based tests on cross-cutting invariants (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import HostNode
from repro.registry import RateLimiter, RateLimitExceeded
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, SlurmController


# -- WLM scheduling invariants ------------------------------------------------------

job_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),      # nodes
        st.floats(min_value=1.0, max_value=200.0),  # duration
        st.booleans(),                              # exclusive
        st.integers(min_value=0, max_value=100),    # priority
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(job_strategy)
def test_wlm_every_job_completes_and_nodes_never_oversubscribed(jobs):
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(3)]
    ctl = SlurmController(env, hosts)
    cores = hosts[0].cpu.cores

    submitted = [
        ctl.submit(JobSpec(
            name=f"j{i}", user_uid=1000 + i, nodes=n, duration=d,
            exclusive=ex, priority=prio,
            cores_per_node=0 if ex else max(1, cores // 4),
            time_limit=10_000,
        ))
        for i, (n, d, ex, prio) in enumerate(jobs)
    ]

    # Invariant checks sampled while the simulation runs.
    violations = []

    def watchdog(env):
        while True:
            for node in ctl.nodes:
                used = sum(node.allocations.values())
                if used > node.total_cores:
                    violations.append(f"{node.name} oversubscribed: {used}")
                exclusive_jobs = [
                    j for j in ctl.running.values()
                    if j.spec.exclusive and node.name in j.allocated_nodes
                ]
                if exclusive_jobs and len(node.allocations) > 1:
                    violations.append(f"{node.name} shares an exclusive job")
            yield env.timeout(7.0)

    env.process(watchdog(env))
    env.run(until=20_000)
    assert not violations, violations
    assert all(j.state is JobState.COMPLETED for j in submitted)
    # conservation: accounted elapsed equals requested durations
    for job, (n, d, ex, prio) in zip(submitted, jobs):
        assert job.elapsed is not None
        assert math.isclose(job.elapsed, min(d, 10_000), rel_tol=1e-9)


@settings(max_examples=25, deadline=None)
@given(job_strategy)
def test_wlm_accounting_matches_job_history(jobs):
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(3)]
    ctl = SlurmController(env, hosts)
    for i, (n, d, ex, prio) in enumerate(jobs):
        ctl.submit(JobSpec(name=f"j{i}", user_uid=1, nodes=n, duration=d,
                           exclusive=ex, priority=prio, time_limit=10_000))
    env.run(until=30_000)
    records = ctl.accounting.all()
    assert len(records) == len(jobs)
    for record in records:
        assert record.end_time >= record.start_time >= record.submit_time
        assert record.cpu_seconds >= 0


# -- rate limiter ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=80),
)
def test_rate_limiter_never_exceeds_budget_in_any_window(max_requests, raw_times):
    window = 100.0
    limiter = RateLimiter(max_requests=max_requests, window_seconds=window)
    admitted = []
    for t in sorted(raw_times):
        try:
            limiter.check("ip", now=t)
            admitted.append(t)
        except RateLimitExceeded:
            pass
    # in every sliding window, at most max_requests were admitted
    for t in admitted:
        in_window = [a for a in admitted if t - window < a <= t]
        assert len(in_window) <= max_requests


# -- mount table resolution ---------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(["/a", "/a/b", "/a/b/c", "/d", "/d/e"]),
                min_size=1, max_size=6, unique=True))
def test_mount_table_resolves_to_longest_prefix(targets):
    from repro.fs import FileTree, PROFILES
    from repro.fs.drivers import mount_bind
    from repro.kernel.mounts import MountTable

    table = MountTable(ns_id=1)
    for target in targets:
        table.add(target, mount_bind(FileTree(), PROFILES["nvme"]))
    for target in targets:
        probe = target + "/leaf"
        hit = table.resolve(probe)
        assert hit is not None
        entry, inner = hit
        # the chosen mount is the longest target that prefixes the probe
        candidates = [t for t in targets if probe == t or probe.startswith(t + "/")]
        assert entry.target == max(candidates, key=len)
        assert inner.startswith("/")


# -- blob store dedup ------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=20))
def test_blob_store_dedup_by_digest(payloads):
    from repro.oci.digest import digest_bytes
    from repro.registry.storage import FSBlobStore

    store = FSBlobStore()
    for payload in payloads:
        store.put(digest_bytes(payload), len(payload))
    assert len(store) == len({digest_bytes(p) for p in payloads})
    # used bytes counts each unique blob once
    unique = {digest_bytes(p): len(p) for p in payloads}
    assert store.used_bytes == sum(unique.values())
