"""Tests for the §4.1.3 repackager, exec-into (§4.1.6), and registry GC."""

import pytest

from repro.cluster import HostNode
from repro.core.repackage import repackage_for_hpc
from repro.engines import DockerEngine, EngineError, PodmanEngine, SarusEngine
from repro.kernel.errors import EPERM
from repro.oci import Builder, ImageConfig, Layer, OCIImage
from repro.oci.runtime import ContainerState
from repro.registry import OCIDistributionRegistry, RegistryError


# -- repackaging --------------------------------------------------------------------

def service_image():
    builder = Builder()
    image = builder.build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /srv/webapp 2000000\nEXPOSE 8443\nUSER 33"
    )
    image.config.required_uids = (33, 101)
    # give some files the www-data uid
    flat = image.flatten()
    return image


def test_repackage_fixes_ports_uids_identity():
    image = service_image()
    report = repackage_for_hpc(image, SarusEngine, invoking_uid=1000)
    assert report.clean
    repacked = report.repackaged
    assert repacked.config.exposed_ports == ()
    assert repacked.config.required_uids == ()
    assert repacked.config.user == "1000"
    assert any("EXPOSE" in f for f in report.fixes)
    assert any("single-uid" in f for f in report.fixes)
    # repackaged image actually runs on the HPC engine
    node = HostNode()
    sarus = SarusEngine(node)
    user = node.kernel.spawn(uid=1000)
    result = sarus.run(repacked, user)
    assert result.container.state is ContainerState.RUNNING
    assert sarus.oci_compat_gaps(repacked) == []


def test_repackage_noop_for_full_namespace_engines():
    image = service_image()
    report = repackage_for_hpc(image, DockerEngine)
    assert report.repackaged is image
    assert report.fixes == ["no changes needed"]


def test_repackage_reports_unfixable():
    image = service_image()
    image.config.labels["com.repro.needs-privileged"] = "true"
    report = repackage_for_hpc(image, SarusEngine)
    assert not report.clean
    assert any("privileged" in u for u in report.unfixable)


def test_repackage_injects_identity_stubs():
    from repro.fs import FileTree

    bare = FileTree()
    bare.create_file("/bin/app", size=10)
    image = OCIImage(ImageConfig(), [Layer(bare)])
    report = repackage_for_hpc(image, SarusEngine, invoking_uid=1234)
    flat = report.repackaged.flatten()
    assert b"1234" in flat.get("/etc/passwd").data
    assert flat.exists("/etc/nsswitch.conf")


# -- exec into running containers ---------------------------------------------------------

@pytest.fixture
def registry():
    reg = OCIDistributionRegistry(name="exec-tests")
    img = Builder().build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/solver 1000000\nENTRYPOINT /opt/solver"
    )
    reg.push_image("hpc/solver", "v1", img)
    return reg


@pytest.fixture
def running(registry):
    node = HostNode()
    engine = PodmanEngine(node)
    user = node.kernel.spawn(uid=1000)
    pulled = engine.pull("hpc/solver", "v1", registry)
    result = engine.run(pulled, user)
    return node, engine, user, result.container


def test_owner_can_exec_into_rootless_container(running):
    node, engine, user, container = running
    shell = engine.exec_into(container, user, argv=("bash",))
    assert shell.userns is container.proc.userns
    assert shell.root == container.proc.root
    assert shell.mount_table is container.proc.mount_table
    assert shell.creds.uid == 1000


def test_other_user_cannot_exec_into_container(running):
    node, engine, user, container = running
    intruder = node.kernel.spawn(uid=2000)
    with pytest.raises(EPERM):
        engine.exec_into(container, intruder)


def test_root_can_exec_into_any_container(running):
    node, engine, user, container = running
    admin_shell = engine.exec_into(container, node.kernel.init)
    assert admin_shell.userns is container.proc.userns


def test_exec_requires_running_container(running):
    node, engine, user, container = running
    engine.runtime.finish(container)
    with pytest.raises(EngineError, match="not running"):
        engine.exec_into(container, user)


def test_user_cannot_exec_into_docker_container(registry):
    """The daemon model: the container's userns belongs to root, so the
    user must go through the daemon API (§4.1.6 indirection)."""
    node = HostNode()
    docker = DockerEngine(node)
    docker.start_daemon()
    user = node.kernel.spawn(uid=1000)
    pulled = docker.pull("hpc/solver", "v1", registry)
    container = docker.run(pulled, user).container
    with pytest.raises(EPERM):
        docker.exec_into(container, user)
    # the daemon (root) can, which is what `docker exec` actually does
    docker.exec_into(container, node.kernel.init)


# -- registry GC ---------------------------------------------------------------------------------

def test_delete_tag_and_garbage_collect():
    reg = OCIDistributionRegistry(name="gc")
    builder = Builder()
    shared_base = "FROM alpine\nRUN touch /shared"
    a = builder.build_dockerfile(shared_base + "\nRUN write /a 1000")
    b = builder.build_dockerfile(shared_base + "\nRUN write /b 1000")
    reg.push_image("r/app", "a", a)
    reg.push_image("r/app", "b", b)
    blobs_before = len(reg.store)
    reg.delete_tag("r/app", "a")
    with pytest.raises(RegistryError):
        reg.resolve("r/app", "a")
    purged = reg.garbage_collect()
    assert purged > 0
    # b is intact, including the shared base layer
    pulled, _ = reg.pull_image("r/app", "b")
    assert pulled.digest == b.digest
    assert len(reg.store) < blobs_before


def test_gc_with_no_garbage_is_noop():
    reg = OCIDistributionRegistry(name="gc2")
    img = Builder().build_dockerfile("FROM alpine\nRUN touch /x")
    reg.push_image("r/app", "v1", img)
    assert reg.garbage_collect() == 0
    reg.pull_image("r/app", "v1")


def test_delete_missing_tag():
    reg = OCIDistributionRegistry(name="gc3")
    with pytest.raises(RegistryError):
        reg.delete_tag("ghost", "v1")
