"""Property test: the indexed backfill scheduler equals the naive one.

The availability index (free-core buckets + merge heap) and the
completion calendar (sorted job-end list feeding the shadow-time probe)
are pure perf rewrites of the retained linear paths; for any job mix
the two controllers must start, place and finish every job identically.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import HostNode
from repro.sim import Environment
from repro.wlm import JobSpec, SlurmController

job_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),      # nodes
        st.sampled_from((0, 1, 2, 4)),              # cores_per_node (0 = all)
        st.floats(min_value=1.0, max_value=150.0),  # duration
        st.booleans(),                              # exclusive
        st.integers(min_value=0, max_value=50),     # priority
        st.sampled_from((200.0, 10_000.0)),         # time_limit
    ),
    min_size=1,
    max_size=14,
)


def run_mode(indexed, jobs):
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(4)]
    ctl = SlurmController(env, hosts, indexed=indexed)
    submitted = [
        ctl.submit(JobSpec(
            name=f"j{i}",
            user_uid=1000 + i,
            nodes=n,
            duration=d,
            exclusive=ex,
            priority=prio,
            cores_per_node=cores or None,
            time_limit=limit,
        ))
        for i, (n, cores, d, ex, prio, limit) in enumerate(jobs)
    ]
    env.run(until=40_000)
    return [
        (j.state.name, j.start_time, j.end_time, tuple(j.allocated_nodes))
        for j in submitted
    ]


@settings(max_examples=30, deadline=None)
@given(job_strategy)
def test_indexed_backfill_matches_naive_oracle(jobs):
    assert run_mode(True, jobs) == run_mode(False, jobs)
