"""Tests for PreemptMode=REQUEUE preemption (§6 feature)."""

import pytest

from repro.cluster import HostNode
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, SlurmController


def make(env, n=2, preemption=True):
    hosts = [HostNode(name=f"n{i}") for i in range(n)]
    return SlurmController(env, hosts, preemption=preemption)


def test_high_priority_preempts_and_victim_requeues():
    env = Environment()
    ctl = make(env, n=1)
    low = ctl.submit(JobSpec(name="low", user_uid=1, duration=500, priority=0))
    env.run(until=50)
    assert low.state is JobState.RUNNING
    high = ctl.submit(JobSpec(name="high", user_uid=2, duration=100, priority=100))
    env.run()
    assert high.state is JobState.COMPLETED
    assert low.state is JobState.COMPLETED
    # high ran before low finished; low was requeued and restarted
    assert high.start_time < low.end_time
    assert low.preempt_count == 1
    assert high.end_time <= low.start_time or low.start_time > high.start_time


def test_no_preemption_when_disabled():
    env = Environment()
    ctl = make(env, n=1, preemption=False)
    low = ctl.submit(JobSpec(name="low", user_uid=1, duration=500, priority=0))
    env.run(until=50)
    high = ctl.submit(JobSpec(name="high", user_uid=2, duration=100, priority=100))
    env.run()
    assert high.start_time >= low.end_time  # FIFO honored
    assert not hasattr(low, "preempt_count") or low.preempt_count == 0


def test_equal_priority_never_preempts():
    env = Environment()
    ctl = make(env, n=1, preemption=True)
    first = ctl.submit(JobSpec(name="a", user_uid=1, duration=200, priority=50))
    env.run(until=20)
    second = ctl.submit(JobSpec(name="b", user_uid=2, duration=50, priority=50))
    env.run()
    assert second.start_time >= first.end_time


def test_preemption_only_when_sufficient():
    """Preempting must actually free enough nodes, or nobody is harmed."""
    env = Environment()
    ctl = make(env, n=3, preemption=True)
    small = ctl.submit(JobSpec(name="small", user_uid=1, nodes=1, duration=300, priority=0))
    env.run(until=20)
    # wide high-priority job needs 3 nodes; 2 idle + 1 preemptable => go
    wide = ctl.submit(JobSpec(name="wide", user_uid=2, nodes=3, duration=50, priority=100))
    env.run()
    assert wide.state is JobState.COMPLETED
    assert small.preempt_count == 1


def test_preempted_accounting_counts_final_run_only():
    env = Environment()
    ctl = make(env, n=1)
    low = ctl.submit(JobSpec(name="low", user_uid=1, duration=100, priority=0))
    env.run(until=30)
    ctl.submit(JobSpec(name="high", user_uid=2, duration=50, priority=99))
    env.run()
    records = [r for r in ctl.accounting.all() if r.job_name == "low"]
    assert len(records) == 1
    assert records[0].elapsed == pytest.approx(100, abs=1)
