"""Tests for the Slurm-like controller: scheduling, allocation effects,
accounting, drain/resume, service jobs."""

import pytest

from repro.cluster import GPUDevice, HostNode
from repro.kernel import KernelConfig
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, NodeState, SlurmController, WLMError


def make_cluster(env, n=4, gpus=0, kernel_config=None):
    hosts = [
        HostNode(
            name=f"nid{i:04}",
            kernel_config=kernel_config or KernelConfig.modern_hpc(),
            gpus=[GPUDevice(vendor="nvidia", model="a100", index=j) for j in range(gpus)],
        )
        for i in range(n)
    ]
    return SlurmController(env, hosts), hosts


def test_job_runs_and_completes():
    env = Environment()
    ctl, _ = make_cluster(env)
    job = ctl.submit(JobSpec(name="solver", user_uid=1000, nodes=2, duration=100))
    env.run()
    assert job.state is JobState.COMPLETED
    assert len(job.allocated_nodes) == 2
    assert job.elapsed == pytest.approx(100)
    assert job.wait_time > 0  # sched latency + setup


def test_fifo_order_on_scarce_nodes():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    a = ctl.submit(JobSpec(name="a", user_uid=1, duration=50))
    b = ctl.submit(JobSpec(name="b", user_uid=2, duration=50))
    env.run()
    assert a.start_time < b.start_time
    assert b.start_time >= a.end_time


def test_backfill_lets_small_job_jump():
    env = Environment()
    ctl, _ = make_cluster(env, n=2)
    # long job takes both nodes' worth? no: takes 1 node, long
    long1 = ctl.submit(JobSpec(name="long", user_uid=1, nodes=1, duration=1000, time_limit=1000))
    # wide job needs 2 nodes -> blocked until long1 ends
    wide = ctl.submit(JobSpec(name="wide", user_uid=1, nodes=2, duration=10, time_limit=100))
    # small short job fits on the free node and ends before the shadow time
    small = ctl.submit(JobSpec(name="small", user_uid=1, nodes=1, duration=10, time_limit=20))
    env.run()
    assert small.start_time < wide.start_time  # backfilled
    assert wide.start_time >= long1.end_time


def test_no_backfill_when_disabled():
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(2)]
    ctl = SlurmController(env, hosts, backfill=False)
    ctl.submit(JobSpec(name="long", user_uid=1, nodes=1, duration=1000, time_limit=1000))
    wide = ctl.submit(JobSpec(name="wide", user_uid=1, nodes=2, duration=10, time_limit=100))
    small = ctl.submit(JobSpec(name="small", user_uid=1, nodes=1, duration=10, time_limit=20))
    env.run()
    assert small.start_time > wide.start_time or small.start_time >= 1000


def test_exclusive_allocation_default():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    a = ctl.submit(JobSpec(name="a", user_uid=1, duration=100, cores_per_node=1))
    b = ctl.submit(JobSpec(name="b", user_uid=2, duration=100, cores_per_node=1))
    env.run()
    # both ask for 1 core but exclusive=True keeps them serialized
    assert b.start_time >= a.end_time


def test_shared_allocation_when_not_exclusive():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    a = ctl.submit(JobSpec(name="a", user_uid=1, duration=100, cores_per_node=8, exclusive=False))
    b = ctl.submit(JobSpec(name="b", user_uid=2, duration=100, cores_per_node=8, exclusive=False))
    env.run()
    assert a.start_time == b.start_time  # both fit on the 64-core node


def test_allocation_sets_up_cgroup_devices_delegation():
    env = Environment()
    ctl, hosts = make_cluster(env, n=1, gpus=2)
    seen = {}

    def on_start(node, job, user_proc):
        seen["proc"] = user_proc
        seen["kernel"] = node.host.kernel

    job = ctl.submit(
        JobSpec(name="gpu-job", user_uid=1000, gpus_per_node=2, duration=10, on_start=on_start)
    )
    env.run()
    kernel = seen["kernel"]
    proc = seen["proc"]
    assert proc.creds.uid == 1000
    assert proc.granted_devices == {"nvidia0", "nvidia1"}
    cg = kernel.cgroups.cgroup_of(proc.pid)
    assert cg is not None and f"job_{job.job_id}" in cg.path
    assert cg.delegated_uid() == 1000  # cgroup v2 delegation for rootless payloads


def test_no_delegation_on_cgroup_v1_site():
    env = Environment()
    ctl, _ = make_cluster(env, n=1, kernel_config=KernelConfig.legacy_hpc())
    seen = {}
    ctl.submit(
        JobSpec(name="j", user_uid=1000, duration=5,
                on_start=lambda n, j, p: seen.update(kernel=n.host.kernel, proc=p))
    )
    env.run()
    cg = seen["kernel"].cgroups.cgroup_of(seen["proc"].pid)
    assert cg.delegated_uid() is None


def test_accounting_records():
    env = Environment()
    ctl, _ = make_cluster(env, n=2)
    ctl.submit(JobSpec(name="a", user_uid=1000, nodes=2, duration=100))
    ctl.submit(JobSpec(name="b", user_uid=2000, nodes=1, duration=50, gpus_per_node=0))
    env.run()
    acct = ctl.accounting
    assert len(acct) == 2
    assert acct.total_cpu_seconds(1000) == pytest.approx(100 * 64 * 2)
    assert acct.for_user(2000)[0].elapsed == pytest.approx(50)


def test_service_job_runs_until_cancelled():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    svc = ctl.submit(JobSpec(name="kubelet", user_uid=1000, duration=None, time_limit=10_000))

    def canceller(env, ctl, job):
        yield env.timeout(500)
        ctl.cancel(job)

    env.process(canceller(env, ctl, svc))
    env.run()
    assert svc.state is JobState.CANCELLED
    assert svc.end_time == pytest.approx(500)


def test_service_job_hits_time_limit():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    svc = ctl.submit(JobSpec(name="svc", user_uid=1, duration=None, time_limit=100))
    env.run()
    assert svc.state is JobState.TIMEOUT


def test_cancel_pending_job():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    a = ctl.submit(JobSpec(name="a", user_uid=1, duration=100))
    b = ctl.submit(JobSpec(name="b", user_uid=1, duration=100))
    ctl.cancel(b)
    env.run()
    assert b.state is JobState.CANCELLED
    assert b.start_time is None


def test_drain_and_resume():
    env = Environment()
    ctl, _ = make_cluster(env, n=2)
    ctl.drain_nodes(["nid0000"], reason="k8s reallocation")
    job = ctl.submit(JobSpec(name="wide", user_uid=1, nodes=2, duration=10))

    def resumer(env, ctl):
        yield env.timeout(100)
        ctl.resume_nodes(["nid0000"])

    env.process(resumer(env, ctl))
    env.run()
    assert job.state is JobState.COMPLETED
    assert job.start_time >= 100  # had to wait for the drained node


def test_oversized_job_rejected():
    env = Environment()
    ctl, _ = make_cluster(env, n=2)
    with pytest.raises(WLMError, match="nodes"):
        ctl.submit(JobSpec(name="huge", user_uid=1, nodes=5))


def test_utilization_tracking():
    env = Environment()
    ctl, _ = make_cluster(env, n=2)
    ctl.submit(JobSpec(name="half", user_uid=1, nodes=1, duration=100))
    env.run(until=200)
    util = ctl.utilization()
    assert 0.2 < util < 0.35  # one of two nodes busy for ~half the window


def test_priority_beats_fifo():
    env = Environment()
    ctl, _ = make_cluster(env, n=1)
    low = ctl.submit(JobSpec(name="low", user_uid=1, duration=10, priority=0))
    high = ctl.submit(JobSpec(name="high", user_uid=1, duration=10, priority=100))
    env.run()
    # both were pending at the first scheduling pass; high goes first
    assert high.start_time <= low.start_time
