"""Tests for SPANK container plugins (Shifter / pyxis): Table 3's WLM
integration rows as behaviour."""

import pytest

from repro.cluster import GPUDevice, HostNode
from repro.engines import EnrootEngine, ShifterEngine
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.oci.runtime import ContainerState
from repro.registry import OCIDistributionRegistry
from repro.sim import Environment
from repro.wlm import JobSpec, JobState, SlurmController
from repro.wlm.plugins import PyxisSpankPlugin, ShifterSpankPlugin
from repro.wlm.spank import SpankError


@pytest.fixture
def registry():
    reg = OCIDistributionRegistry(name="site")
    img = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app 1000000\nENTRYPOINT /opt/app"
    )
    reg.push_image("hpc/app", "v1", img)
    return reg


def run_with_plugin(plugin_cls, engine_cls, registry, option_key):
    env = Environment()
    hosts = [HostNode(name=f"n{i}", gpus=[GPUDevice("nvidia", "a100", 0)]) for i in range(2)]
    ctl = SlurmController(env, hosts)
    engines = {h.name: engine_cls(h) for h in hosts}
    ctl.spank.load(plugin_cls(engines, registry), controller=ctl)

    results = {}

    def on_start(node, job, user_proc):
        if node.name == job.allocated_nodes[0] and "step" not in results:
            step = ctl.srun(job, ("app",), options={option_key: "hpc/app:v1"})
            results["step"] = step

    job = ctl.submit(
        JobSpec(name="ctr-job", user_uid=1000, nodes=2, duration=60, on_start=on_start)
    )
    env.run()
    return ctl, job, results


def test_shifter_spank_launches_containers(registry):
    ctl, job, results = run_with_plugin(
        ShifterSpankPlugin, ShifterEngine, registry, "shifter_image"
    )
    assert job.state is JobState.COMPLETED
    step = results["step"]
    contexts = step.contexts
    assert len(contexts) == 2  # one task per allocated node
    for ctx in contexts:
        assert ctx.run_result is not None
        assert ctx.run_result.container.state is ContainerState.RUNNING
        # container runs as the job user, inside the allocation
        assert ctx.run_result.container.proc.host_uid() == 1000


def test_pyxis_spank_launches_enroot(registry):
    ctl, job, results = run_with_plugin(
        PyxisSpankPlugin, EnrootEngine, registry, "container_image"
    )
    step = results["step"]
    assert all(ctx.run_result is not None for ctx in step.contexts)


def test_plain_step_unaffected_by_plugin(registry):
    env = Environment()
    hosts = [HostNode(name="n0")]
    ctl = SlurmController(env, hosts)
    engines = {h.name: ShifterEngine(h) for h in hosts}
    ctl.spank.load(ShifterSpankPlugin(engines, registry))
    captured = {}

    def on_start(node, job, user_proc):
        captured["step"] = ctl.srun(job, ("hostname",))  # no image option

    ctl.submit(JobSpec(name="plain", user_uid=1, duration=5, on_start=on_start))
    env.run()
    assert all(ctx.run_result is None for ctx in captured["step"].contexts)


def test_plugin_missing_engine_errors(registry):
    env = Environment()
    hosts = [HostNode(name="n0")]
    ctl = SlurmController(env, hosts)
    ctl.spank.load(ShifterSpankPlugin({}, registry))  # not deployed anywhere
    errors = []

    def on_start(node, job, user_proc):
        try:
            ctl.srun(job, ("app",), options={"shifter_image": "hpc/app:v1"})
        except SpankError as exc:
            errors.append(str(exc))

    ctl.submit(JobSpec(name="j", user_uid=1, duration=5, on_start=on_start))
    env.run()
    assert errors and "not deployed" in errors[0]


def test_task_exit_stops_containers(registry):
    env = Environment()
    hosts = [HostNode(name="n0")]
    ctl = SlurmController(env, hosts)
    engines = {h.name: ShifterEngine(h) for h in hosts}
    ctl.spank.load(ShifterSpankPlugin(engines, registry))
    captured = {}

    def on_start(node, job, user_proc):
        step = ctl.srun(job, ("app",), options={"shifter_image": "hpc/app:v1"})
        ctl.finish_step(job, step)
        captured["step"] = step

    ctl.submit(JobSpec(name="j", user_uid=1, duration=5, on_start=on_start))
    env.run()
    ctx = captured["step"].contexts[0]
    assert ctx.run_result.container.state is ContainerState.STOPPED
