"""Fleet workload engine: determinism, byte-identity, leaks, CLI."""

import dataclasses
import json
import pickle

import pytest

from repro.cli import main
from repro.faults import find_leaks
from repro.shard import FleetCell, run_cells
from repro.sim import Environment
from repro.sim import profile
from repro.workload.fleet import (
    FleetConfig,
    FleetShardEngine,
    fleet_cells,
    fleet_report_document,
    merge_shard_results,
    render_fleet_summary,
    run_fleet,
)

#: small enough for unit tests, big enough to exercise queueing + cold pulls
SMALL = FleetConfig(tenants=8, nodes=16, starts=400, images=6, shards=4)


@pytest.fixture()
def _profile_clean():
    yield
    profile.disable()
    profile.counters.reset()


# -- config -------------------------------------------------------------------

def test_config_json_roundtrip():
    config = dataclasses.replace(SMALL, zipf_s=1.7, naive=True)
    assert FleetConfig.from_json(config.to_json()) == config


@pytest.mark.parametrize("bad", [
    dict(tenants=0),
    dict(starts=-1),
    dict(cpu_choices=(16,)),                 # exceeds node_cpus=8
    dict(cpu_choices=(1, 2), cpu_shares=(1.0,)),
    dict(epoch=0.0),
    dict(shards=0),
])
def test_config_validation(bad):
    with pytest.raises(ValueError):
        dataclasses.replace(SMALL, **bad)


def test_shard_partition_is_exact():
    config = dataclasses.replace(SMALL, tenants=11, nodes=29, starts=997, shards=4)
    shards = config.effective_shards
    tenant_sets = [set(config.shard_tenant_ids(s)) for s in range(shards)]
    union = set().union(*tenant_sets)
    assert union == set(range(config.tenants))
    assert sum(len(t) for t in tenant_sets) == config.tenants
    assert sum(config.shard_node_count(s) for s in range(shards)) == config.nodes
    assert sum(config.shard_start_counts()) == config.starts


# -- determinism + byte-identity ---------------------------------------------

def test_double_run_is_deterministic():
    first = fleet_report_document(run_fleet(SMALL))
    second = fleet_report_document(run_fleet(SMALL))
    assert first == second


def test_naive_mode_matches_optimized_engine():
    fast = fleet_report_document(run_fleet(SMALL))
    naive = fleet_report_document(
        run_fleet(dataclasses.replace(SMALL, naive=True))
    )
    assert naive["config"].pop("naive") is True
    assert fast["config"].pop("naive") is False
    assert fast == naive


def test_parallel_jobs_byte_identical():
    serial = run_fleet(SMALL, jobs=1)
    pooled = run_fleet(SMALL, jobs=2)
    assert fleet_report_document(serial) == fleet_report_document(pooled)
    assert render_fleet_summary(serial) == render_fleet_summary(pooled)


def test_fleet_completes_everything_without_leaks():
    result = run_fleet(SMALL)
    assert result.leaks == []
    assert result.starts == SMALL.starts
    assert result.completions + result.failed == result.starts
    assert result.warm_starts + result.cold_pulls + result.failed == result.starts
    # the shared-base catalog must actually deduplicate pushed blobs
    assert result.registry_pushes == SMALL.tenants * SMALL.images
    assert result.blob_uploads_skipped > 0
    assert result.stored_bytes <= result.quota_used


# -- leak audit (repro.faults) ------------------------------------------------

def test_find_leaks_clean_on_drained_engine():
    engine = FleetShardEngine(
        Environment(), dataclasses.replace(SMALL, shards=1), shard=0
    )
    engine.run()
    assert find_leaks(engine) == []


def test_find_leaks_reports_injected_capacity_leak():
    engine = FleetShardEngine(
        Environment(), dataclasses.replace(SMALL, shards=1), shard=0
    )
    engine.run()
    engine.index.alloc(2)  # a claim nobody will ever release
    leaks = find_leaks(engine)
    assert leaks and "capacity leak" in leaks[0]


def test_find_leaks_reports_stuck_slot_and_queue():
    engine = FleetShardEngine(
        Environment(), dataclasses.replace(SMALL, shards=1), shard=0
    )
    engine.run()
    engine._live = 1
    engine._pending.append((0, 0.0))
    descriptions = " / ".join(find_leaks(engine))
    assert "still live" in descriptions and "still queued" in descriptions


# -- pressure counters --------------------------------------------------------

def test_fleet_surfaces_queue_and_liveness_peaks(_profile_clean):
    profile.counters.reset()
    run_fleet(SMALL)
    snap = profile.counters.snapshot()
    assert snap["event_queue_peak"] > 0
    assert snap["live_objects_peak"] > 0
    # naive mode reports the same pressure through the per-event path
    profile.counters.reset()
    run_fleet(dataclasses.replace(SMALL, naive=True))
    naive_snap = profile.counters.snapshot()
    assert naive_snap["live_objects_peak"] == snap["live_objects_peak"]


# -- shard cells --------------------------------------------------------------

def test_fleet_cells_pickle_and_label():
    cells = fleet_cells(SMALL)
    assert len(cells) == SMALL.effective_shards
    assert [c.label for c in cells] == [
        f"fleet-shard={s}" for s in range(len(cells))
    ]
    restored = pickle.loads(pickle.dumps(cells))
    assert restored == cells


def test_fleet_cells_merge_matches_run_fleet():
    shard = run_cells(fleet_cells(SMALL), jobs=1)
    merged = merge_shard_results(shard.values(), SMALL)
    assert fleet_report_document(merged) == fleet_report_document(run_fleet(SMALL))


# -- CLI ----------------------------------------------------------------------

FLEET_ARGS = ["fleet", "--tenants", "4", "--nodes", "8", "--starts", "150",
              "--images", "4", "--shards", "2"]


def test_cli_fleet_runs_and_reports(capsys, tmp_path):
    out = tmp_path / "fleet.json"
    assert main([*FLEET_ARGS, "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "fleet: 8 nodes / 4 tenants / 150 starts" in stdout
    assert "leaks:      none" in stdout
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-fleet-report/2"
    assert report["summary"]["starts"] == 150
    assert report["leaks"] == []


def test_cli_fleet_jobs_output_identical(capsys, tmp_path):
    def run(subdir, extra=()):
        out = tmp_path / subdir / "fleet.json"
        out.parent.mkdir()
        assert main([*FLEET_ARGS, *extra, "--out", str(out)]) == 0
        # drop the line echoing the per-run output path
        stdout = "\n".join(
            line for line in capsys.readouterr().out.splitlines()
            if str(out) not in line
        )
        return stdout, out.read_text()

    serial_stdout, serial_report = run("serial")
    pooled_stdout, pooled_report = run("pooled", ("--jobs", "2"))
    assert serial_stdout == pooled_stdout
    assert serial_report == pooled_report


def test_cli_fleet_rejects_bad_config(capsys):
    assert main(["fleet", "--tenants", "0"]) == 2
    assert "bad fleet config" in capsys.readouterr().err
