"""Fleet chaos: fault plans through the fleet engine, SLO scorecards.

The contracts under test mirror the non-chaos fleet suite: determinism
(double runs byte-identical), shard transparency (``--jobs N`` equals
serial, including the scorecard), fast-vs-naive equivalence, and the
§3.2 no-lingering-state property — a crashed-then-restored node must
leave the capacity ledger and the leak audit clean for *any* seeded
plan, which is what the hypothesis property at the bottom sweeps.
"""

import dataclasses
import json
import pickle

from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs import timeseries as obs_timeseries
from repro.workload.fleet import (
    FleetConfig,
    fleet_cells,
    fleet_node_name,
    fleet_node_names,
    fleet_report_document,
    generate_fleet_plan,
    run_fleet,
    score_fleet_slo,
)

SMALL = FleetConfig(tenants=8, nodes=16, starts=400, images=6, shards=4)

#: the seed used throughout: on SMALL it yields 2 node crashes plus a
#: registry 429 and a slow-blob window, all inside the horizon
SEED = 3


def _scored_run(config, plan, jobs=1, interval=5.0):
    """Run a sampled fleet under ``plan`` and score the default rules."""
    obs_timeseries.reset()
    result = run_fleet(config, jobs=jobs, sample_interval=interval, plan=plan)
    # merge restores points but not the interval; pin it before scoring
    obs_timeseries.recorder.enable(interval=interval, reset=False)
    try:
        card = score_fleet_slo(result)
    finally:
        obs_timeseries.disable()
        obs_timeseries.reset()
    return result, card


# -- plan generation -----------------------------------------------------------

def test_generated_plan_targets_fleet_nodes():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    names = set(fleet_node_names(SMALL))
    crashes = [e for e in plan.events if e.kind is FaultKind.NODE_CRASH]
    assert crashes, "seeded fleet plan must include node crashes"
    assert {e.target for e in crashes} <= names
    assert all(e.until <= SMALL.day for e in plan.events)
    # same seed -> same schedule, serialized or not
    again = FaultPlan.from_json(generate_fleet_plan(SMALL, seed=SEED).to_json())
    assert again.to_json() == plan.to_json()


# -- node crash delivery -------------------------------------------------------

def test_node_crash_requeues_and_drains_clean():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    result = run_fleet(SMALL, plan=plan)
    assert result.crashes > 0
    assert result.requeues > 0
    assert result.leaks == []
    assert "node_crash" in result.injected
    assert result.injected_at["node_crash"] >= 0.0
    # every start is accounted for: requeued starts run again elsewhere,
    # so placements exceed the configured starts by exactly the requeues
    assert result.completions + result.failed == result.config.starts
    assert result.starts == (
        result.completions + result.failed + result.requeues
    )


def test_fast_matches_naive_under_chaos():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    fast = fleet_report_document(run_fleet(SMALL, plan=plan))
    naive = fleet_report_document(
        run_fleet(dataclasses.replace(SMALL, naive=True), plan=plan)
    )
    assert naive["config"].pop("naive") is True
    assert fast["config"].pop("naive") is False
    assert fast == naive


def test_chaos_double_run_and_jobs_byte_identical():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    first, card_first = _scored_run(SMALL, plan)
    second, card_second = _scored_run(SMALL, plan)
    pooled, card_pooled = _scored_run(SMALL, plan, jobs=4)
    docs = [fleet_report_document(r) for r in (first, second, pooled)]
    assert docs[0] == docs[1] == docs[2]
    cards = [c.to_json(indent=2) for c in (card_first, card_second, card_pooled)]
    assert cards[0] == cards[1] == cards[2]


def test_report_document_carries_fault_section():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    doc = fleet_report_document(run_fleet(SMALL, plan=plan))
    assert doc["schema"] == "repro-fleet-report/2"
    faults = doc["faults"]
    assert faults["injected"]["node_crash"] == doc["summary"]["crashes"]
    assert set(faults["first_injected_at"]) == set(faults["injected"])


# -- registry outage accounting ------------------------------------------------

def test_registry_outage_wall_fails_starts_per_tenant():
    # a timeout wall across the whole horizon: every cold pull burns its
    # RetryPolicy attempts in place and fails (a 429 instead carries
    # retry_after, which legally skips past the window); warm starts
    # still succeed because the node already has the digests
    wall = FaultPlan(
        [FaultEvent(kind=FaultKind.REGISTRY_TIMEOUT, at=0.0,
                    duration=SMALL.day * 40)],
        seed=0,
    )
    result = run_fleet(SMALL, plan=wall)
    assert result.failed > 0
    assert sum(result.fault_retries.values()) > 0
    assert result.leaks == []
    assert result.completions + result.failed == result.config.starts
    tenant_failed = sum(t[2] for t in result.tenants.values())
    assert tenant_failed == result.failed


# -- SLO scorecard -------------------------------------------------------------

def test_fleet_scorecard_detects_seeded_crash():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    result, card = _scored_run(SMALL, plan)
    doc = json.loads(card.to_json())
    assert doc["scenario"] == "fleet"
    # the nodes-down rule sees the crash on the very tick it lands
    assert doc["detection"]["node_crash"] >= 0.0
    fired = {a["rule"] for a in doc["alerts"]}
    assert "nodes-down" in fired and "requeue-sweep" in fired
    rendered = card.render()
    assert "node_crash" in rendered


# -- shard cells ---------------------------------------------------------------

def test_fleet_cells_carry_plan_json_and_pickle():
    plan = generate_fleet_plan(SMALL, seed=SEED)
    cells = fleet_cells(SMALL, plan=plan)
    assert all(c.plan_json == plan.to_json(indent=None) for c in cells)
    assert pickle.loads(pickle.dumps(cells)) == cells
    # no plan -> the field stays None and the cell list is unchanged
    assert all(c.plan_json is None for c in fleet_cells(SMALL))


# -- CLI -----------------------------------------------------------------------

FLEET_ARGS = ["fleet", "--tenants", "4", "--nodes", "8", "--starts", "150",
              "--images", "4", "--shards", "2"]


def test_cli_fleet_chaos_slo_roundtrip(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    card_a = tmp_path / "card-a.json"
    card_b = tmp_path / "card-b.json"
    args = [*FLEET_ARGS, "--chaos", "--seed", str(SEED)]
    assert main([*args, "--save-plan", str(plan_path),
                 "--slo-out", str(card_a)]) == 0
    stdout = capsys.readouterr().out
    assert "chaos:" in stdout
    assert plan_path.exists()
    # replaying the saved plan via --faults reproduces the scorecard
    assert main([*FLEET_ARGS, "--faults", str(plan_path), "--seed", str(SEED),
                 "--slo-out", str(card_b)]) == 0
    capsys.readouterr()
    assert card_a.read_text() == card_b.read_text()
    doc = json.loads(card_a.read_text())
    assert doc["schema"].startswith("repro-slo-scorecard/")


def test_cli_fleet_chaos_flag_validation(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(generate_fleet_plan(SMALL, seed=SEED).to_json())
    assert main([*FLEET_ARGS, "--chaos", "--faults", str(plan_path)]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main([*FLEET_ARGS, "--save-plan", str(tmp_path / "out.json")]) == 2
    assert "--save-plan needs" in capsys.readouterr().err


# -- property: crash/restore leaves no residue ---------------------------------

TINY = FleetConfig(tenants=4, nodes=8, starts=120, images=4, shards=2)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    crash_at=st.floats(min_value=0.0, max_value=TINY.day,
                       allow_nan=False, allow_infinity=False),
    outage=st.floats(min_value=0.0, max_value=600.0,
                     allow_nan=False, allow_infinity=False),
    node=st.integers(min_value=0, max_value=TINY.nodes - 1),
)
def test_crashed_then_restored_node_leaves_no_residue(
    seed, crash_at, outage, node
):
    """Any single crash/restore cycle anywhere in the horizon drains
    clean: no down nodes, no leaked cores, no stuck slots or queues, and
    the start accounting still balances."""
    plan = FaultPlan(
        [FaultEvent(kind=FaultKind.NODE_CRASH, at=crash_at, duration=outage,
                    target=fleet_node_name(node))],
        seed=seed,
    )
    config = dataclasses.replace(TINY, seed=seed)
    result = run_fleet(config, plan=plan)
    assert result.leaks == []
    assert result.completions + result.failed == result.config.starts
    assert result.starts == (
        result.completions + result.failed + result.requeues
    )
    # determinism holds under the same plan
    assert fleet_report_document(run_fleet(config, plan=plan)) == \
        fleet_report_document(result)
