"""Property tests for the fleet-scale workload generators (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.rng import DeterministicRNG
from repro.workload.generators import (
    DiurnalProfile,
    ZipfSampler,
    modulated_poisson_arrivals,
    weighted_choice_indices,
    zipf_weights,
)

# -- arrival process ----------------------------------------------------------

arrival_params = st.tuples(
    st.integers(min_value=0, max_value=2**31),        # seed
    st.integers(min_value=1, max_value=400),          # count
    st.floats(min_value=0.01, max_value=50.0),        # base rate (1/s)
    st.floats(min_value=0.0, max_value=0.95),         # diurnal amplitude
    st.floats(min_value=30.0, max_value=10_000.0),    # period (s)
)


def _arrivals(seed, count, rate, amplitude, period):
    stream = DeterministicRNG(seed).stream("arrivals")
    return modulated_poisson_arrivals(
        stream, count, rate, DiurnalProfile(amplitude=amplitude), period
    )


@settings(max_examples=40, deadline=None)
@given(arrival_params)
def test_arrivals_strictly_increasing_and_nonnegative(params):
    times = _arrivals(*params)
    assert len(times) == params[1]
    assert times[0] >= 0.0
    assert np.all(np.diff(times) > 0.0), "arrival times must be strictly increasing"


@settings(max_examples=25, deadline=None)
@given(arrival_params)
def test_arrivals_seed_deterministic(params):
    assert np.array_equal(_arrivals(*params), _arrivals(*params))
    seed, count, rate, amplitude, period = params
    if count >= 10:
        other = _arrivals(seed + 1, count, rate, amplitude, period)
        assert not np.array_equal(_arrivals(*params), other)


# -- diurnal modulation bounds ------------------------------------------------

burst_strategy = st.builds(
    lambda a, b, boost: (min(a, b), max(a, b) + 1e-3, boost),
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.0, max_value=5.0),
).filter(lambda w: w[1] <= 1.0)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.95),
    st.floats(min_value=0.0, max_value=1.0),
    st.lists(burst_strategy, max_size=3),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=1.0, max_value=1e5),
)
def test_diurnal_factor_within_bounds(amplitude, peak_frac, bursts, t, period):
    profile = DiurnalProfile(
        amplitude=amplitude, peak_frac=peak_frac, bursts=tuple(bursts)
    )
    value = profile.factor(t, period)
    assert profile.min_factor - 1e-9 <= value <= profile.max_factor + 1e-9
    assert profile.min_factor > 0.0, "cumulative intensity must stay increasing"
    # the vectorized path the trace generator uses agrees with the scalar one
    frac = (t / period) % 1.0
    vec = profile.factors(np.asarray([frac]))[0]
    assert abs(vec - value) < 1e-9


# -- Zipf popularity ----------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_zipf_weights_normalized_and_ranked(n, s):
    weights = zipf_weights(n, s)
    assert weights.shape == (n,)
    assert abs(float(weights.sum()) - 1.0) < 1e-9
    assert np.all(np.diff(weights) <= 1e-12), "popularity must fall with rank"


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=2, max_value=64),
    st.floats(min_value=0.5, max_value=2.5),
)
def test_zipf_sampler_deterministic_in_range_and_head_heavy(seed, n, s):
    sampler = ZipfSampler(n, s)
    draws = sampler.sample(DeterministicRNG(seed).stream("imgs"), 4000)
    again = sampler.sample(DeterministicRNG(seed).stream("imgs"), 4000)
    assert np.array_equal(draws, again)
    assert draws.min() >= 0 and draws.max() < n
    counts = np.bincount(draws, minlength=n)
    # rank 0 is the head of the distribution: at least as popular as the
    # tail rank, and (loosely) near its expected share
    assert counts[0] >= counts[n - 1]
    expected_head = sampler.weights[0] * len(draws)
    assert counts[0] > 0.5 * expected_head


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20),
)
def test_weighted_choice_indices_in_range_and_deterministic(seed, weights):
    arr = np.asarray(weights)
    idx = weighted_choice_indices(DeterministicRNG(seed).stream("w"), arr, 500)
    again = weighted_choice_indices(DeterministicRNG(seed).stream("w"), arr, 500)
    assert np.array_equal(idx, again)
    assert idx.min() >= 0 and idx.max() < len(weights)
