"""Unit tests for the BSP jitter model."""

import pytest

from repro.workload.mpi import BSPJob, ConmonNoise, DaemonNoise, NoiseSource


def test_clean_run_is_exact():
    job = BSPJob(n_ranks=64, n_steps=100, step_seconds=0.01)
    assert job.run() == pytest.approx(1.0)


def test_deterministic_given_seed():
    job = BSPJob(n_ranks=128, n_steps=50)
    a = job.run(DaemonNoise(), seed=4)
    b = job.run(DaemonNoise(), seed=4)
    assert a == b
    c = job.run(DaemonNoise(), seed=5)
    assert a != c


def test_daemon_slowdown_grows_with_ranks():
    small = BSPJob(n_ranks=8, n_steps=100).slowdown(DaemonNoise(), seed=2)
    large = BSPJob(n_ranks=512, n_steps=100).slowdown(DaemonNoise(), seed=2)
    assert large > small >= 1.0


def test_conmon_negligible():
    job = BSPJob(n_ranks=512, n_steps=100)
    assert job.slowdown(ConmonNoise(), seed=2) < 1.01


def test_background_fraction_applied_even_without_spikes():
    quiet = DaemonNoise(spike_probability=0.0)
    job = BSPJob(n_ranks=4, n_steps=100)
    assert job.slowdown(quiet, seed=0) == pytest.approx(1.002)


def test_base_noise_source_is_silent():
    job = BSPJob(n_ranks=16, n_steps=10)
    assert job.run(NoiseSource(), seed=0) == pytest.approx(job.run())
