"""Tests for application IO models and workload generators."""

import pytest

from repro.fs import FileTree, PROFILES, pack_squash
from repro.fs.drivers import mount_overlay, mount_squash
from repro.sim.rng import DeterministicRNG
from repro.workload import (
    CompiledMPIApp,
    PodBatchGenerator,
    PythonPipelineApp,
    poisson_arrivals,
)


def python_tree(n=100):
    t = FileTree()
    t.create_file("/usr/bin/python3.11", size=6_000_000)
    for i in range(n):
        t.create_file(f"/usr/lib/python3.11/m{i:03}.py", size=3_000)
    return t


def mpi_tree():
    t = FileTree()
    t.create_file("/opt/app/bin/solver", size=45_000_000)
    t.create_file("/opt/app/share/params.dat", size=120_000_000)
    return t


def test_python_app_cost_scales_with_file_count():
    small = mount_overlay([python_tree(50)], PROFILES["nvme"])
    large = mount_overlay([python_tree(500)], PROFILES["nvme"])
    app = PythonPipelineApp()
    assert app.startup_cost(large) > 5 * app.startup_cost(small)


def test_python_app_requires_python_content():
    empty = mount_overlay([mpi_tree()], PROFILES["nvme"])
    with pytest.raises(ValueError, match="no python files"):
        PythonPipelineApp().startup_cost(empty)


def test_mpi_app_bandwidth_bound():
    view = mount_overlay([mpi_tree()], PROFILES["nvme"])
    app = CompiledMPIApp()
    cost = app.startup_cost(view)
    # ~165 MB at 2.5 GB/s: dominated by streaming, not metadata
    assert 0.05 < cost < 1.0


def test_mpi_app_missing_data_files_tolerated():
    t = FileTree()
    t.create_file("/opt/app/bin/solver", size=1_000_000)
    view = mount_overlay([t], PROFILES["nvme"])
    assert CompiledMPIApp().startup_cost(view) > 0


def test_apps_feel_fuse_penalty_differently():
    py_img = pack_squash(python_tree(300))
    mpi_img = pack_squash(mpi_tree())
    py_pen = (PythonPipelineApp().startup_cost(mount_squash(py_img, fuse=True))
              / PythonPipelineApp().startup_cost(mount_squash(py_img, fuse=False)))
    mpi_pen = (CompiledMPIApp().startup_cost(mount_squash(mpi_img, fuse=True))
               / CompiledMPIApp().startup_cost(mount_squash(mpi_img, fuse=False)))
    assert py_pen > mpi_pen  # §4.1.2: interpreted stacks suffer more


def test_poisson_arrivals_monotone_and_rate():
    rng = DeterministicRNG(3)
    times = poisson_arrivals(rng, rate_per_second=2.0, count=500)
    assert times == sorted(times)
    mean_gap = times[-1] / len(times)
    assert 0.3 < mean_gap < 0.8  # ~0.5s at rate 2/s


def test_pod_batch_generator_deterministic():
    a = PodBatchGenerator("r.x/img:v1", seed=9).batch(5)
    b = PodBatchGenerator("r.x/img:v1", seed=9).batch(5)
    assert [p.spec.duration for p in a] == [p.spec.duration for p in b]
    assert [p.spec.total_requests().cpu for p in a] == [
        p.spec.total_requests().cpu for p in b
    ]
    c = PodBatchGenerator("r.x/img:v1", seed=10).batch(5)
    assert [p.spec.duration for p in a] != [p.spec.duration for p in c]


def test_pod_batch_respects_ranges():
    gen = PodBatchGenerator("r.x/img:v1", seed=1, cpu_choices=(2,),
                            duration_range=(10, 20))
    pods = gen.batch(20)
    assert all(p.spec.total_requests().cpu == 2 for p in pods)
    assert all(10 <= p.spec.duration <= 20 for p in pods)
    assert len({p.metadata.name for p in pods}) == 20
