#!/usr/bin/env python
"""Docs consistency check: dead links and phantom metric names.

Two classes of documentation rot, both cheap to catch mechanically:

1. **Dead relative links** — every ``[text](path)`` markdown link whose
   target is a relative path must point at a file or directory that
   exists in the repo (anchors and external ``scheme://`` links are
   skipped; an anchor suffix on a file link is stripped before the
   existence check).
2. **Phantom metric names** — EXPERIMENTS.md carries the metric-name
   catalog.  Every backticked series name that looks like a metric
   (``fleet.pending``, ``k8s.pod.start_seconds.p99`` …) must literally
   appear somewhere under ``src/`` — either whole, or, for derived
   suffixes (``.rate`` / ``.p50`` / ``.p99``) and the ``sim.*`` bridge
   prefix, as its base series.  This keeps the catalog honest when a
   series is renamed or removed.

Exit status: 0 clean, 1 with findings (one line each on stderr).
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

DOCS = sorted(REPO.glob("*.md"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
#: backticked tokens that are metric series: dotted lowercase path, at
#: least one dot, no spaces/parens/braces (label examples are skipped)
METRIC_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+$")
#: sampler-derived suffixes that never appear literally in src
DERIVED_SUFFIXES = (".rate", ".p50", ".p99")


def iter_links(text: str):
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        yield target.split("#", 1)[0]


def check_links() -> list[str]:
    problems = []
    for doc in DOCS:
        for target in iter_links(doc.read_text()):
            if not target:
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{doc.name}: dead link -> {target}")
    return problems


def metric_names(text: str) -> set[str]:
    names = set()
    for span in CODE_SPAN_RE.findall(text):
        for token in span.split(" / "):
            token = token.strip()
            # `repro.…` tokens are module paths, not series names
            if METRIC_RE.match(token) and not token.startswith("repro."):
                names.add(token)
    return names


def check_metrics() -> list[str]:
    catalog = REPO / "EXPERIMENTS.md"
    text = catalog.read_text()
    # only audit the catalog section: names elsewhere in the file may be
    # module paths (repro.obs.slo) rather than series names
    start = text.find("### Metric-name catalog")
    if start < 0:
        return ["EXPERIMENTS.md: metric-name catalog section not found"]
    end = text.find("### Summary", start)
    section = text[start:end if end > 0 else len(text)]

    src = "\n".join(
        p.read_text() for p in sorted((REPO / "src").rglob("*.py"))
    )
    problems = []
    for name in sorted(metric_names(section)):
        candidates = [name]
        for suffix in DERIVED_SUFFIXES:
            if name.endswith(suffix):
                candidates.append(name[: -len(suffix)])
        if name.startswith("sim."):
            candidates.append(name[len("sim."):])
        if name.endswith(".*"):
            candidates.append(name[:-2])
        if not any(f'"{c}"' in src or f"'{c}'" in src for c in candidates):
            problems.append(
                f"EXPERIMENTS.md: catalog series `{name}` not found in src/"
            )
    return problems


def main() -> int:
    problems = check_links() + check_metrics()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(DOCS)} files, links + metric catalog verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
